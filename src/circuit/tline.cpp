#include "circuit/tline.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/devices_linear.hpp"
#include "linalg/decomp.hpp"
#include "linalg/eigen.hpp"

namespace emc::ckt {

namespace {
constexpr double kDcShortConductance = 1e3;  // DC companion of a lossless line
}

IdealLine::IdealLine(int ap, int am, int bp, int bm, double z0, double td)
    : ap_(ap), am_(am), bp_(bp), bm_(bm), z0_(z0), td_(td), g_(1.0 / z0) {
  if (z0 <= 0.0) throw std::invalid_argument("IdealLine: z0 must be positive");
  if (td <= 0.0) throw std::invalid_argument("IdealLine: td must be positive");
}

double IdealLine::wave_at(const std::vector<double>& hist, double t) const {
  if (hist.empty()) return 0.0;
  const double u = (t - hist_t0_) / hist_dt_;
  if (u <= 0.0) return hist.front();
  const auto last = static_cast<double>(hist.size() - 1);
  if (u >= last) return hist.back();
  const auto k = static_cast<std::size_t>(u);
  const double frac = u - static_cast<double>(k);
  return hist[k] * (1.0 - frac) + hist[k + 1] * frac;
}

void IdealLine::start_step(const SimState& st) {
  if (st.dt > 0.0 && td_ < st.dt)
    throw std::runtime_error("IdealLine: delay shorter than the time step");
  hist_dt_ = st.dt;
  // Incident wave at each end = wave launched from the far end td ago.
  ea_ = wave_at(wave_b_, st.t - td_);
  eb_ = wave_at(wave_a_, st.t - td_);
}

void IdealLine::stamp(Stamper& s, const SimState& st) const {
  if (st.dc) {
    s.conductance(ap_, bp_, kDcShortConductance);
    if (am_ != bm_) s.conductance(am_, bm_, kDcShortConductance);
    return;
  }
  // i_a = (v_a - E_a)/z0 into the line at each end.
  s.conductance(ap_, am_, g_);
  s.current_source(am_, ap_, g_ * ea_);
  s.conductance(bp_, bm_, g_);
  s.current_source(bm_, bp_, g_ * eb_);
}

void IdealLine::commit(const SimState& st) {
  if (st.dc) return;
  const double va = st.v(ap_) - st.v(am_);
  const double vb = st.v(bp_) - st.v(bm_);
  const double ia = g_ * (va - ea_);
  const double ib = g_ * (vb - eb_);
  if (wave_a_.empty()) hist_t0_ = st.t;
  wave_a_.push_back(va + z0_ * ia);
  wave_b_.push_back(vb + z0_ * ib);
}

void IdealLine::post_dc(const SimState& st) {
  // Seed a steady pre-history consistent with the operating point: at DC
  // i_a = -i_b = i through the line, both waves constant.
  const double va = st.v(ap_) - st.v(am_);
  const double vb = st.v(bp_) - st.v(bm_);
  const double ia = kDcShortConductance * (va - vb);
  wave_a_.assign(1, va + z0_ * ia);
  wave_b_.assign(1, vb - z0_ * ia);
  hist_t0_ = st.t;
  hist_dt_ = 1.0;  // single constant sample; interpolation clamps anyway
}

void IdealLine::reset() {
  wave_a_.clear();
  wave_b_.clear();
  ea_ = eb_ = 0.0;
}

ModalLineSegment::ModalLineSegment(std::vector<int> nodes_a, std::vector<int> nodes_b,
                                   const linalg::Matrix& l_per_m,
                                   const linalg::Matrix& c_per_m, double length)
    : na_(std::move(nodes_a)), nb_(std::move(nodes_b)), n_(na_.size()) {
  if (n_ == 0 || nb_.size() != n_)
    throw std::invalid_argument("ModalLineSegment: inconsistent terminal lists");
  if (l_per_m.rows() != n_ || l_per_m.cols() != n_ || c_per_m.rows() != n_ ||
      c_per_m.cols() != n_)
    throw std::invalid_argument("ModalLineSegment: matrix size mismatch");
  if (length <= 0.0) throw std::invalid_argument("ModalLineSegment: length must be positive");

  // Diagonalize LC: with C = Lc Lc^T (Cholesky), S = Lc^T, the matrix
  // S L S^T is symmetric; its eigenvalues are the squared modal slownesses
  // and, because the modal capacitance is exactly the identity in this
  // basis, the modal impedances are sqrt(lambda).
  const linalg::Cholesky chol(c_per_m);
  const linalg::Matrix lc = chol.factor();  // lower triangular
  const linalg::Matrix s_up = lc.transposed();

  linalg::Matrix m_sym = s_up * l_per_m * lc;
  const auto eig = linalg::eigen_symmetric(m_sym);

  z0m_.resize(n_);
  tdm_.resize(n_);
  for (std::size_t m = 0; m < n_; ++m) {
    if (eig.values[m] <= 0.0)
      throw std::invalid_argument("ModalLineSegment: LC product not positive definite");
    z0m_[m] = std::sqrt(eig.values[m]);
    tdm_[m] = length * std::sqrt(eig.values[m]);
  }

  // tv_inv = Q^T S;  ti = S^T Q = Lc Q.
  tv_inv_ = eig.vectors.transposed() * s_up;
  ti_ = lc * eig.vectors;

  // Port admittance Y = ti * diag(1/z0m) * tv_inv.
  linalg::Matrix mid(n_, n_);
  for (std::size_t m = 0; m < n_; ++m) mid(m, m) = 1.0 / z0m_[m];
  y_ = ti_ * mid * tv_inv_;

  wave_a_.resize(n_);
  wave_b_.resize(n_);
  ea_.resize(n_);
  eb_.resize(n_);
  ja_.resize(n_);
  jb_.resize(n_);
}

double ModalLineSegment::wave_at(const std::vector<double>& hist, double t) const {
  if (hist.empty()) return 0.0;
  const double u = (t - hist_t0_) / hist_dt_;
  if (u <= 0.0) return hist.front();
  const auto last = static_cast<double>(hist.size() - 1);
  if (u >= last) return hist.back();
  const auto k = static_cast<std::size_t>(u);
  const double frac = u - static_cast<double>(k);
  return hist[k] * (1.0 - frac) + hist[k + 1] * frac;
}

std::vector<double> ModalLineSegment::modal_voltages(const SimState& st,
                                                     const std::vector<int>& nodes) const {
  std::vector<double> v(n_);
  for (std::size_t k = 0; k < n_; ++k) v[k] = st.v(nodes[k]);
  return tv_inv_.apply(v);
}

void ModalLineSegment::start_step(const SimState& st) {
  hist_dt_ = st.dt;
  for (std::size_t m = 0; m < n_; ++m) {
    if (st.dt > 0.0 && tdm_[m] < st.dt)
      throw std::runtime_error("ModalLineSegment: modal delay shorter than the time step");
    ea_[m] = wave_at(wave_b_[m], st.t - tdm_[m]);
    eb_[m] = wave_at(wave_a_[m], st.t - tdm_[m]);
  }
  // Physical companion current sources J = ti * diag(1/z0m) * E.
  std::vector<double> sa(n_), sb(n_);
  for (std::size_t m = 0; m < n_; ++m) {
    sa[m] = ea_[m] / z0m_[m];
    sb[m] = eb_[m] / z0m_[m];
  }
  ja_ = ti_.apply(sa);
  jb_ = ti_.apply(sb);
}

void ModalLineSegment::stamp(Stamper& s, const SimState& st) const {
  if (st.dc) {
    for (std::size_t k = 0; k < n_; ++k)
      s.conductance(na_[k], nb_[k], kDcShortConductance);
    return;
  }
  // i_a = Y v_a - J_a (into the line), same at end b.
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t l = 0; l < n_; ++l) {
      s.g(na_[k], na_[l], y_(k, l));
      s.g(nb_[k], nb_[l], y_(k, l));
    }
    s.current_source(0, na_[k], ja_[k]);
    s.current_source(0, nb_[k], jb_[k]);
  }
}

void ModalLineSegment::commit(const SimState& st) {
  if (st.dc) return;
  const auto vma = modal_voltages(st, na_);
  const auto vmb = modal_voltages(st, nb_);
  const bool first = wave_a_[0].empty();
  if (first) hist_t0_ = st.t;
  for (std::size_t m = 0; m < n_; ++m) {
    const double ima = (vma[m] - ea_[m]) / z0m_[m];
    const double imb = (vmb[m] - eb_[m]) / z0m_[m];
    wave_a_[m].push_back(vma[m] + z0m_[m] * ima);
    wave_b_[m].push_back(vmb[m] + z0m_[m] * imb);
  }
}

void ModalLineSegment::post_dc(const SimState& st) {
  const auto vma = modal_voltages(st, na_);
  const auto vmb = modal_voltages(st, nb_);
  // Physical DC currents through the companion shorts.
  std::vector<double> idc(n_);
  for (std::size_t k = 0; k < n_; ++k)
    idc[k] = kDcShortConductance * (st.v(na_[k]) - st.v(nb_[k]));
  // Modal currents: im = ti^{-1} i. ti = Lc Q is cheap to invert via the
  // admittance relation; here we solve the small dense system directly.
  const auto im = linalg::solve_dense(ti_, idc);
  hist_t0_ = st.t;
  hist_dt_ = 1.0;
  for (std::size_t m = 0; m < n_; ++m) {
    wave_a_[m].assign(1, vma[m] + z0m_[m] * im[m]);
    wave_b_[m].assign(1, vmb[m] - z0m_[m] * im[m]);
  }
}

void ModalLineSegment::reset() {
  for (auto& h : wave_a_) h.clear();
  for (auto& h : wave_b_) h.clear();
}

SkinLadder fit_skin_ladder(double rskin_times_len, double f_lo, double f_hi, int branches) {
  if (branches < 1) throw std::invalid_argument("fit_skin_ladder: need >= 1 branch");
  if (f_lo <= 0.0 || f_hi <= f_lo) throw std::invalid_argument("fit_skin_ladder: bad band");
  SkinLadder lad;
  double prev_cum = 0.0;
  for (int k = 0; k < branches; ++k) {
    // Corner frequencies log-spaced across the band; the cumulative
    // engaged resistance at f_k matches rskin*sqrt(f_k).
    const double frac = (branches == 1) ? 0.5
                                        : static_cast<double>(k) /
                                              static_cast<double>(branches - 1);
    const double fk = f_lo * std::pow(f_hi / f_lo, frac);
    const double cum = rskin_times_len * std::sqrt(fk);
    const double rk = cum - prev_cum;
    prev_cum = cum;
    lad.r.push_back(rk);
    lad.l.push_back(rk / (2.0 * M_PI * fk));
  }
  return lad;
}

CoupledLineHandle add_coupled_lossy_line(Circuit& ckt, const std::vector<int>& nodes_a,
                                         const std::vector<int>& nodes_b,
                                         const CoupledLineParams& params, double dt_hint,
                                         int sections) {
  const std::size_t n = nodes_a.size();
  if (n == 0 || nodes_b.size() != n)
    throw std::invalid_argument("add_coupled_lossy_line: inconsistent terminal lists");
  if (params.length <= 0.0)
    throw std::invalid_argument("add_coupled_lossy_line: length must be positive");

  // Fastest mode bounds the usable section count: every modal section
  // delay must be at least one time step. Build a scratch segment across
  // the full L/C to read the true modal delays.
  std::vector<int> dummy(n, 0);
  ModalLineSegment full(dummy, dummy, params.l, params.c, params.length);
  double td_min = full.modal_td(0);
  for (std::size_t m = 1; m < full.modes(); ++m) td_min = std::min(td_min, full.modal_td(m));

  int max_sections = (dt_hint > 0.0) ? static_cast<int>(std::floor(td_min / dt_hint)) : 16;
  max_sections = std::max(1, std::min(max_sections, 16));
  int m_sections = (sections > 0) ? sections : max_sections;
  if (dt_hint > 0.0 && td_min / m_sections < dt_hint)
    throw std::invalid_argument(
        "add_coupled_lossy_line: section modal delay below the time step; "
        "reduce `sections` or the time step");

  const double sec_len = params.length / m_sections;
  const bool has_skin = params.loss.rskin > 0.0;

  CoupledLineHandle handle;
  handle.nodes_a = nodes_a;
  handle.nodes_b = nodes_b;
  handle.sections = m_sections;

  // Shunt dielectric conductance per section, split between the two
  // boundary node sets: G = omega_ref * tan_delta * C * sec_len.
  linalg::Matrix gshunt(n, n);
  if (params.loss.tan_delta > 0.0) {
    const double w0 = 2.0 * M_PI * params.loss.f_ref;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        gshunt(i, j) = w0 * params.loss.tan_delta * params.c(i, j) * sec_len;
  }

  auto add_shunt_half = [&](const std::vector<int>& nodes, double factor) {
    if (params.loss.tan_delta <= 0.0) return;
    for (std::size_t i = 0; i < n; ++i) {
      // Maxwellian form: diagonal entries to ground include the (negative)
      // mutual terms; realize as node-to-node + node-to-ground resistors.
      double g_to_ground = 0.0;
      for (std::size_t j = 0; j < n; ++j) g_to_ground += gshunt(i, j);
      if (g_to_ground * factor > 1e-18)
        ckt.add<Resistor>(nodes[i], ckt.ground(), 1.0 / (g_to_ground * factor));
      for (std::size_t j = i + 1; j < n; ++j) {
        const double gmut = -gshunt(i, j);  // off-diagonals are negative
        if (gmut * factor > 1e-18)
          ckt.add<Resistor>(nodes[i], nodes[j], 1.0 / (gmut * factor));
      }
    }
  };

  std::vector<int> left = nodes_a;
  for (int s = 0; s < m_sections; ++s) {
    add_shunt_half(left, s == 0 ? 0.5 : 1.0);

    // Series loss elements on each conductor, then the lossless segment.
    std::vector<int> after_loss(n);
    for (std::size_t k = 0; k < n; ++k) {
      int cur = left[k];
      const double rsec = params.loss.rdc * sec_len;
      if (rsec > 0.0) {
        const int nxt = ckt.node();
        ckt.add<Resistor>(cur, nxt, rsec);
        cur = nxt;
      }
      if (has_skin) {
        const SkinLadder lad = fit_skin_ladder(params.loss.rskin * sec_len, 1e7, 1e10, 3);
        for (std::size_t b = 0; b < lad.r.size(); ++b) {
          const int nxt = ckt.node();
          ckt.add<Resistor>(cur, nxt, lad.r[b]);
          ckt.add<Inductor>(cur, nxt, lad.l[b]);
          cur = nxt;
        }
      }
      after_loss[k] = cur;
    }

    std::vector<int> right(n);
    const bool last = (s == m_sections - 1);
    for (std::size_t k = 0; k < n; ++k) right[k] = last ? nodes_b[k] : ckt.node();

    auto& seg = ckt.add<ModalLineSegment>(after_loss, right, params.l, params.c, sec_len);
    handle.segments.push_back(&seg);
    left = right;
  }
  add_shunt_half(left, 0.5);

  return handle;
}

}  // namespace emc::ckt
