// Linear circuit primitives: R, C, L, independent sources, controlled
// sources, and a piecewise-linear table current (used by IBIS models).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "circuit/device.hpp"

namespace emc::ckt {

class Resistor : public Device {
 public:
  Resistor(int a, int b, double ohms);
  void stamp(Stamper& s, const SimState& st) const override;

 private:
  int a_, b_;
  double g_;
};

/// Capacitor with trapezoidal companion model. Open in DC.
class Capacitor : public Device {
 public:
  Capacitor(int a, int b, double farads);
  void start_step(const SimState& st) override;
  void stamp(Stamper& s, const SimState& st) const override;
  void commit(const SimState& st) override;
  void post_dc(const SimState& st) override;
  void reset() override;

 private:
  int a_, b_;
  double c_;
  double i_prev_ = 0.0;
  double geq_ = 0.0;
  double ieq_ = 0.0;
};

/// Inductor with a branch-current extra unknown. Short in DC.
class Inductor : public Device {
 public:
  Inductor(int a, int b, double henries);
  int num_extra() const override { return 1; }
  void start_step(const SimState& st) override;
  void stamp(Stamper& s, const SimState& st) const override;
  void reset() override;

  /// Terminal id of the branch-current unknown (valid after finalize()).
  int current_id() const { return extra_base_; }

 private:
  int a_, b_;
  double l_;
};

/// Independent voltage source v(p)-v(m) = f(t) with a branch-current
/// unknown. The unknown follows the SPICE sign convention: it is the
/// current flowing from p through the source to m, so a source delivering
/// power has a negative branch current.
class VSource : public Device {
 public:
  VSource(int p, int m, std::function<double(double)> value);
  /// Convenience: DC source.
  VSource(int p, int m, double dc_value);

  int num_extra() const override { return 1; }
  void stamp(Stamper& s, const SimState& st) const override;

  int current_id() const { return extra_base_; }
  double value_at(double t) const { return value_(t); }

 private:
  int p_, m_;
  std::function<double(double)> value_;
};

/// Independent current source f(t) flowing from a to b.
class ISource : public Device {
 public:
  ISource(int a, int b, std::function<double(double)> value);
  void stamp(Stamper& s, const SimState& st) const override;

 private:
  int a_, b_;
  std::function<double(double)> value_;
};

/// Voltage-controlled current source: current k*(v(ca)-v(cb)) from a to b.
class Vccs : public Device {
 public:
  Vccs(int a, int b, int ca, int cb, double gm);
  void stamp(Stamper& s, const SimState& st) const override;

 private:
  int a_, b_, ca_, cb_;
  double gm_;
};

/// Voltage-controlled voltage source: v(p)-v(m) = k*(v(ca)-v(cb)).
class Vcvs : public Device {
 public:
  Vcvs(int p, int m, int ca, int cb, double k);
  int num_extra() const override { return 1; }
  void stamp(Stamper& s, const SimState& st) const override;

 private:
  int p_, m_, ca_, cb_;
  double k_;
};

/// Piecewise-linear static I(V) branch (current from a to b as a function
/// of v(a)-v(b)), with linear end-segment extrapolation and an optional
/// externally controlled multiplier (IBIS switching coefficient).
class TableCurrent : public Device {
 public:
  /// `iv` must be sorted by voltage and contain at least two points.
  TableCurrent(int a, int b, std::vector<std::pair<double, double>> iv);

  bool nonlinear() const override { return true; }
  void stamp(Stamper& s, const SimState& st) const override;

  /// Scale factor applied to the whole table (default 1). The owner may
  /// update it every step (time-dependent switching coefficients).
  void set_scale(double k) { scale_ = k; }
  double scale() const { return scale_; }

  /// Table lookup: current and slope at voltage v (unscaled).
  std::pair<double, double> eval(double v) const;

 private:
  int a_, b_;
  std::vector<std::pair<double, double>> iv_;
  double scale_ = 1.0;
};

}  // namespace emc::ckt
