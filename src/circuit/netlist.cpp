#include "circuit/netlist.hpp"

namespace emc::ckt {

int Circuit::node() { return next_node_++; }

int Circuit::node(const std::string& name) {
  auto it = named_.find(name);
  if (it != named_.end()) return it->second;
  const int id = next_node_++;
  named_.emplace(name, id);
  return id;
}

int Circuit::finalize() {
  int next_extra = next_node_;
  for (auto& d : devices_) {
    if (d->num_extra() > 0) {
      d->set_extra_base(next_extra);
      next_extra += d->num_extra();
    }
  }
  return next_extra - 1;  // unknowns exclude ground
}

}  // namespace emc::ckt
