// Device / stamp interface of the MNA transient engine.
//
// Conventions
// -----------
// * Terminal ids live in one id space: id 0 is ground, ids 1..n-1 are
//   circuit nodes, ids >= n are engine-assigned extra unknowns (branch
//   currents of voltage sources / inductors). Unknown vector index of a
//   non-ground id is (id - 1).
// * Rows of the MNA system are "sum of currents leaving the node = 0";
//   G x = rhs after moving constants to the right-hand side.
// * Transient integration is trapezoidal with a fixed step (the step is
//   locked to the macromodel sampling time Ts, which is how discrete-time
//   behavioral models are coupled to the analog solver).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace emc::ckt {

/// Snapshot handed to devices during stamping / commit.
struct SimState {
  std::span<const double> x;       ///< candidate solution (unknown space)
  std::span<const double> x_prev;  ///< accepted solution of the previous step
  double t = 0.0;                  ///< time of the step being solved
  double dt = 0.0;                 ///< fixed step (0 during DC)
  bool dc = false;                 ///< true while solving the operating point
  double src_scale = 1.0;          ///< source-stepping continuation factor

  double v(int id) const { return id == 0 ? 0.0 : x[static_cast<std::size_t>(id) - 1]; }
  double v_prev(int id) const {
    return id == 0 ? 0.0 : x_prev[static_cast<std::size_t>(id) - 1];
  }
};

/// Assembles the linearized MNA system; devices talk only to this.
///
/// Abstract on purpose: a device's stamp is target-agnostic. The engine
/// routes it into a dense Jacobian, a sparse matrix lane, or a pure
/// pattern-discovery pass through the implementations in
/// circuit/stampers.hpp — the device never knows which.
class Stamper {
 public:
  virtual ~Stamper() = default;

  /// G[row][col] += val (ground rows/columns are dropped).
  virtual void g(int row_id, int col_id, double val) = 0;

  /// rhs[row] += val.
  virtual void rhs(int row_id, double val) = 0;

  /// Two-terminal conductance between a and b.
  void conductance(int a, int b, double gval) {
    g(a, a, gval);
    g(b, b, gval);
    g(a, b, -gval);
    g(b, a, -gval);
  }

  /// Independent current source of value i flowing from a to b.
  void current_source(int a, int b, double i) {
    rhs(a, -i);
    rhs(b, i);
  }

  /// Linearized nonlinear branch current i(v), v = v(a)-v(b), around
  /// operating point (v0, i0) with conductance g0 = di/dv|v0.
  void nonlinear_current(int a, int b, double i0, double g0, double v0) {
    conductance(a, b, g0);
    current_source(a, b, i0 - g0 * v0);
  }
};

/// Base class of all circuit elements.
class Device {
 public:
  virtual ~Device() = default;

  /// Number of extra (branch-current) unknowns this device needs.
  virtual int num_extra() const { return 0; }

  /// Engine assigns the first extra unknown id before any analysis.
  void set_extra_base(int id) { extra_base_ = id; }
  int extra_base() const { return extra_base_; }

  /// True if the stamp depends on the candidate solution x.
  ///
  /// Returning false is a stronger promise than x-independence: the
  /// engine's cached-LU fast path assumes a linear device's *matrix*
  /// entries depend only on (dt, dc) — time, history, and the source
  /// scale may enter the right-hand side only. A device whose
  /// conductance varies with t or committed history must return true
  /// even if its stamp ignores x.
  virtual bool nonlinear() const { return false; }

  /// Called once per time step before the Newton loop; history-dependent
  /// companion terms are computed here (x in `st` is the previous solution).
  virtual void start_step(const SimState& st) { (void)st; }

  /// Contribute the (linearized) stamp for the current Newton candidate.
  ///
  /// `stamp` is const on purpose: it runs once per Newton iteration and
  /// must not mutate device state — history updates belong in start_step
  /// (before the solve) and commit (after it). This is what makes a
  /// device's backing model (e.g. one estimated macromodel instance)
  /// provably safe to share across concurrently running analyses.
  virtual void stamp(Stamper& s, const SimState& st) const = 0;

  /// Accept the step: update internal history from the solved state.
  virtual void commit(const SimState& st) { (void)st; }

  /// Reset all history (called when a new analysis begins).
  virtual void reset() {}

  /// Called once after the DC operating point converged, so devices with
  /// memory (lines, capacitors) can seed their history consistently.
  virtual void post_dc(const SimState& st) { (void)st; }

 protected:
  int extra_base_ = -1;
};

}  // namespace emc::ckt
