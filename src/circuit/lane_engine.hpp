// Lane-batched transient engine: advance several topology-sharing
// circuits ("lanes" — e.g. sweep corners differing only in component
// values or stimulus) through the same fixed-step transient in lockstep.
//
// All lanes share one sparse pattern and one symbolic analysis; the
// Jacobians live side by side in a lane-batched SparseMatrix and are
// factored/solved in a single pattern walk with unit-stride lane-inner
// loops. Per-lane arithmetic is the identical operation sequence the
// scalar sparse engine performs, so each lane's waveforms are
// bit-identical to running that circuit alone through
// run_transient_streamed with solver = kSparse. Newton convergence is
// tracked per lane (converged lanes stop stamping and updating; the
// remaining active lanes keep iterating).
#pragma once

#include <span>
#include <vector>

#include "circuit/engine.hpp"
#include "signal/sample_sink.hpp"

namespace emc::ckt {

/// Scratch for run_transient_lanes, reusable across batches. The scalar
/// NewtonWorkspace inside serves the per-lane DC operating points (DC is
/// solved lane by lane — its stamping topology differs from the
/// transient's and is not worth batching).
class LaneWorkspace {
 public:
  NewtonWorkspace scalar;

  std::vector<linalg::SparseCoord> coords;
  linalg::SparsePattern pattern;
  linalg::SparseMatrix a;      ///< batched Jacobians, one lane each
  linalg::SparseLu lu;
  std::vector<double> rhs;     ///< n x lanes, lane-fastest
  std::vector<double> x_new;   ///< n x lanes, lane-fastest
  std::vector<double> stream_buf;  ///< per-lane chunk staging regions
};

/// One lane's failure record: lane-batch runs isolate a diverging lane
/// (frozen at its last committed state, its sink still receives gap-free
/// frames) instead of aborting the batch — the surviving lanes' records
/// stay bit-identical to a clean run. Callers decide what to do with the
/// failed lane (the sweep layer demotes it to a scalar retry).
struct LaneFailure {
  bool failed = false;
  double t = 0.0;       ///< simulation time the lane froze (t_start for DC)
  std::string message;  ///< formatted robust::SolveError text
};

/// What the batch did, per lane and in shared-structure walk currency.
struct LaneRunStats {
  std::vector<SolveStats> lanes;  ///< one per lane, scalar-run semantics

  /// One entry per lane; failures[l].failed marks a lane that diverged
  /// (DC or stepping) and was frozen. Frames delivered after the failure
  /// point repeat the last committed state — the record is not usable.
  std::vector<LaneFailure> failures;
  std::size_t failed_lanes = 0;

  /// Pattern entries the batched factor/solve kernels actually walked
  /// during the stepped transient (each walk shared by every lane), vs.
  /// what the same solves would have walked run lane by lane (each active
  /// lane paying its own walk). Their ratio is the structural work
  /// reduction of lane batching — the honest throughput metric on a
  /// single-core container, where wall time also carries the unbatchable
  /// device evaluations. DC solves are excluded (identical on both sides).
  unsigned long long batched_walk_entries = 0;
  unsigned long long scalar_walk_entries = 0;
};

/// Run the same transient over `lanes` circuits in lockstep.
///
/// Requirements (std::invalid_argument otherwise): at least one lane; all
/// lanes share the unknown count, the stamped sparsity pattern, and
/// linearity; one sink per lane; opt.solver must not be kDense (the lane
/// engine is sparse-only — for exact scalar correspondence run the
/// reference with solver = kSparse).
///
/// Each lane's sink sees exactly the stream run_transient_streamed would
/// deliver for that circuit: begin() with the shared geometry, `probes`
/// channels per frame, chunk_frames frames per chunk.
///
/// Failure isolation: a lane whose DC solve or stepped Newton solve
/// diverges is recorded in LaneRunStats::failures and frozen (identity-
/// stamped into the shared system so the batched factor stays regular)
/// while the surviving lanes continue bit-identically to a clean run.
/// Batch-level errors (shared deadline expiry, invalid arguments,
/// mismatched topologies) still throw.
///
/// `lane_keys` (optional, size = lanes or empty) names each lane for
/// failure reports and the fault-injection harness; empty falls back to
/// opt.context for every lane.
LaneRunStats run_transient_lanes(std::span<Circuit* const> lanes,
                                 const TransientOptions& opt, LaneWorkspace& ws,
                                 std::span<const int> probes,
                                 std::span<sig::SampleSink* const> sinks,
                                 std::size_t chunk_frames = 1024,
                                 std::span<const std::string> lane_keys = {});

}  // namespace emc::ckt
