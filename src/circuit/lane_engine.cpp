#include "circuit/lane_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include "circuit/newton.hpp"
#include "circuit/stampers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace emc::ckt {

LaneRunStats run_transient_lanes(std::span<Circuit* const> lanes,
                                 const TransientOptions& opt, LaneWorkspace& ws,
                                 std::span<const int> probes,
                                 std::span<sig::SampleSink* const> sinks,
                                 std::size_t chunk_frames,
                                 std::span<const std::string> lane_keys) {
  static const obs::Counter c_runs("ckt.lanes.runs");
  static const obs::Counter c_lanes("ckt.lanes.lanes");
  static const obs::Counter c_batched_walk("ckt.lanes.batched_walk_entries");
  static const obs::Counter c_scalar_walk("ckt.lanes.scalar_walk_entries");
  obs::Span span("lane_batch");

  const std::size_t L = lanes.size();
  if (L == 0) throw std::invalid_argument("run_transient_lanes: no lanes");
  if (sinks.size() != L)
    throw std::invalid_argument("run_transient_lanes: need one sink per lane");
  if (opt.solver == SolverKind::kDense)
    throw std::invalid_argument("run_transient_lanes: lane batching is sparse-only");
  if (opt.t_stop <= opt.t_start)
    throw std::invalid_argument("run_transient: t_stop must exceed t_start");
  if (opt.dt <= 0.0) throw std::invalid_argument("run_transient: dt must be positive");
  if (chunk_frames == 0)
    throw std::invalid_argument("run_transient_lanes: chunk_frames must be >= 1");
  if (!lane_keys.empty() && lane_keys.size() != lanes.size())
    throw std::invalid_argument("run_transient_lanes: need one key per lane (or none)");

  const int n_unknowns = lanes[0]->finalize();
  for (Circuit* c : lanes)
    if (c->finalize() != n_unknowns)
      throw std::invalid_argument("run_transient_lanes: lanes differ in unknown count");
  for (int id : probes)
    if (id < 0 || id > n_unknowns)
      throw std::invalid_argument("run_transient_lanes: probe id out of range");
  const auto n = static_cast<std::size_t>(n_unknowns);

  const bool linear = detail::circuit_is_linear(*lanes[0]);
  for (Circuit* c : lanes)
    if (detail::circuit_is_linear(*c) != linear)
      throw std::invalid_argument("run_transient_lanes: lanes differ in linearity");

  LaneRunStats stats;
  stats.lanes.assign(L, SolveStats{});
  stats.failures.assign(L, LaneFailure{});

  // Per-lane identity for failure reports and the fault harness: the
  // caller's key when given, the run context otherwise.
  const auto lane_opt = [&](std::size_t l) {
    TransientOptions o = opt;
    if (!lane_keys.empty()) o.context = lane_keys[l];
    return o;
  };
  const auto lane_fctx = [&](std::size_t l) {
    robust::FaultCtx ctx = detail::fault_ctx(opt);
    if (!lane_keys.empty()) ctx.key = lane_keys[l];
    return ctx;
  };

  std::vector<char> failed(L, 0);
  const auto mark_failed = [&](std::size_t l, double t, std::string message) {
    failed[l] = 1;
    stats.failures[l].failed = true;
    stats.failures[l].t = t;
    stats.failures[l].message = std::move(message);
  };

  for (Circuit* c : lanes)
    for (const auto& dev : c->devices()) dev->reset();

  // Per-lane state vectors stay contiguous: devices see exactly the spans
  // a scalar run would hand them.
  std::vector<std::vector<double>> x(L), x_prev(L);
  for (std::size_t l = 0; l < L; ++l) x[l].assign(n, 0.0);

  // DC operating points are solved lane by lane through the scalar
  // machinery (the DC stamp topology differs from the transient's). The
  // scalar workspace is invalidated per lane — cached factors cannot be
  // trusted across circuits even when the configuration key matches.
  if (ws.scalar.g.rows() != n) ws.scalar.resize(n);
  if (opt.dc_start) {
    for (std::size_t l = 0; l < L; ++l) {
      ws.scalar.invalidate();
      // Per-lane DC failure isolation: the failing lane freezes at zeros
      // and streams zero frames; the rest of the batch proceeds.
      try {
        detail::dc_operating_point_impl(*lanes[l], ws.scalar, linear, x[l], lane_opt(l),
                                        &stats.lanes[l]);
      } catch (const robust::SolveError& e) {
        std::fill(x[l].begin(), x[l].end(), 0.0);
        mark_failed(l, opt.t_start, e.what());
        continue;
      }
      SimState st{x[l], x[l], opt.t_start, 0.0, true, 1.0};
      for (const auto& dev : lanes[l]->devices()) dev->post_dc(st);
    }
  }

  const auto n_steps =
      static_cast<std::size_t>(std::llround((opt.t_stop - opt.t_start) / opt.dt));
  const std::size_t channels = probes.size();

  sig::StreamInfo info;
  info.t0 = opt.t_start;
  info.dt = opt.dt;
  info.channels = channels;
  info.total_frames = n_steps + 1;
  for (sig::SampleSink* s : sinks) s->begin(info);

  ws.stream_buf.resize(L * chunk_frames * channels);
  std::size_t buffered = 0;
  std::size_t flushed = 0;

  const auto stage_frame = [&] {
    for (std::size_t l = 0; l < L; ++l) {
      double* dst = ws.stream_buf.data() + (l * chunk_frames + buffered) * channels;
      for (std::size_t c = 0; c < channels; ++c) {
        const int id = probes[c];
        dst[c] = id == 0 ? 0.0 : x[l][static_cast<std::size_t>(id) - 1];
      }
    }
    if (++buffered == chunk_frames) {
      for (std::size_t l = 0; l < L; ++l) {
        sig::SampleChunk chunk{flushed, buffered, channels,
                               ws.stream_buf.data() + l * chunk_frames * channels};
        sinks[l]->consume(chunk);
      }
      flushed += buffered;
      buffered = 0;
    }
  };

  stage_frame();  // frame 0: the state at t_start

  for (std::size_t l = 0; l < L; ++l) x_prev[l] = x[l];

  bool batch_ready = false;   ///< pattern built and batched storage bound
  bool num_cached = false;    ///< linear fast path: batched factor loaded

  // Assemble the stamped lanes into the batched system. Stamps landing
  // outside the pattern grow it and force a full re-stamp of every lane
  // (set_pattern zeroes all value lanes).
  const auto assemble = [&](const std::vector<char>& active, double t) {
    for (int attempt = 0;; ++attempt) {
      const bool restamp_all = attempt > 0;
      std::vector<linalg::SparseCoord> missed;
      for (std::size_t l = 0; l < L; ++l) {
        if (failed[l]) {
          // A frozen lane is identity-stamped (solution = x_prev): its
          // device state and iterates may be poisoned, and the shared
          // batched factor must never see non-finite values.
          ws.a.clear_lane(l);
          for (std::size_t i = 0; i < n; ++i) ws.rhs[i * L + l] = x_prev[l][i];
          ws.a.add_diag(1.0, l);
          continue;
        }
        if (!restamp_all && !active[l]) continue;
        ws.a.clear_lane(l);
        for (std::size_t i = 0; i < n; ++i) ws.rhs[i * L + l] = 0.0;
        SparseStamper st(ws.a, ws.rhs, l, L, l);
        SimState state{x[l], x_prev[l], t, opt.dt, false, 1.0};
        for (const auto& dev : lanes[l]->devices()) dev->stamp(st, state);
        ws.a.add_diag(opt.gmin, l);
        missed.insert(missed.end(), st.missed().begin(), st.missed().end());
      }
      if (missed.empty()) return;
      if (attempt >= 3) {
        auto info = detail::solve_error_info(robust::FailureKind::kPatternUnstable,
                                             "run_transient_lanes", opt, t, ws.scalar);
        throw robust::SolveError(std::move(info));
      }
      ws.coords.insert(ws.coords.end(), missed.begin(), missed.end());
      ws.pattern = linalg::SparsePattern::build(n, ws.coords);
      ws.a.set_pattern(&ws.pattern, L);
      num_cached = false;
    }
  };

  std::vector<char> active(L, 1);
  for (std::size_t k = 1; k <= n_steps; ++k) {
    const double t = opt.t_start + opt.dt * static_cast<double>(k);

    // Shared deadline: a lane batch has no per-lane wall accounting, so
    // expiry is batch-fatal (the sweep layer retries lanes individually).
    if (opt.deadline != nullptr && opt.deadline->expired()) {
      auto info = detail::solve_error_info(robust::FailureKind::kDeadlineExceeded,
                                           "run_transient_lanes", opt, t, ws.scalar);
      char detail_buf[64];
      std::snprintf(detail_buf, sizeof detail_buf, "wall budget %.3g s exhausted",
                    opt.deadline->budget_s());
      info.detail = detail_buf;
      throw robust::SolveError(std::move(info));
    }

    for (std::size_t l = 0; l < L; ++l) {
      if (failed[l]) continue;
      SimState st{x_prev[l], x_prev[l], t, opt.dt, false, 1.0};
      for (const auto& dev : lanes[l]->devices()) dev->start_step(st);
    }
    for (std::size_t l = 0; l < L; ++l) x[l] = x_prev[l];  // warm start

    if (!batch_ready) {
      // Shared-structure validation + batched storage setup, once per run.
      SimState st0{x[0], x_prev[0], t, opt.dt, false, 1.0};
      ws.coords = detail::stamp_pattern(*lanes[0], st0);
      ws.pattern = linalg::SparsePattern::build(n, ws.coords);
      for (std::size_t l = 1; l < L; ++l) {
        SimState stl{x[l], x_prev[l], t, opt.dt, false, 1.0};
        auto coords = detail::stamp_pattern(*lanes[l], stl);
        if (linalg::SparsePattern::build(n, coords).hash() != ws.pattern.hash())
          throw std::invalid_argument(
              "run_transient_lanes: lanes do not share a stamped pattern");
      }
      ws.a.set_pattern(&ws.pattern, L);
      ws.rhs.assign(n * L, 0.0);
      ws.x_new.assign(n * L, 0.0);
      batch_ready = true;
    }

    if (linear && opt.cache_lu) {
      // Batched linear fast path: one shared-structure factorization per
      // run, one batched back-substitution per step.
      std::fill(active.begin(), active.end(), 1);
      assemble(active, t);
      for (std::size_t l = 0; l < L; ++l)
        if (!failed[l]) ++stats.lanes[l].total_newton_iters;
      bool factored = num_cached;
      if (!num_cached) {
        try {
          ws.lu.factor(ws.a);
          num_cached = factored = true;
          stats.batched_walk_entries += ws.lu.factor_walk();
          stats.scalar_walk_entries += L * ws.lu.factor_walk();
        } catch (const std::runtime_error&) {
          // Singular system: same policy as the scalar linear path — keep
          // the warm-started state and count the step as weakly converged.
          for (std::size_t l = 0; l < L; ++l)
            if (!failed[l]) ++stats.lanes[l].weak_steps;
        }
      }
      if (factored) {
        std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
        ws.lu.solve_lanes_in_place(ws.x_new);
        stats.batched_walk_entries += ws.lu.solve_walk();
        stats.scalar_walk_entries += L * ws.lu.solve_walk();
        for (std::size_t l = 0; l < L; ++l) {
          if (failed[l]) continue;  // frozen lanes keep the warm-started x_prev
          for (std::size_t i = 0; i < n; ++i) x[l][i] = ws.x_new[i * L + l];
        }
      }
    } else {
      std::size_t n_active = 0;
      for (std::size_t l = 0; l < L; ++l) {
        active[l] = failed[l] ? 0 : 1;
        n_active += active[l];
      }
      for (int it = 0; it < opt.max_newton && n_active > 0; ++it) {
        for (std::size_t l = 0; l < L; ++l)
          if (active[l]) ++stats.lanes[l].total_newton_iters;
        assemble(active, t);
        try {
          ws.lu.factor(ws.a);
        } catch (const std::runtime_error&) {
          break;  // singular at this iterate: weak/NaN handling below
        }
        num_cached = false;
        stats.batched_walk_entries += ws.lu.factor_walk();
        stats.scalar_walk_entries += n_active * ws.lu.factor_walk();
        std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
        ws.lu.solve_lanes_in_place(ws.x_new);
        stats.batched_walk_entries += ws.lu.solve_walk();
        stats.scalar_walk_entries += n_active * ws.lu.solve_walk();

        for (std::size_t l = 0; l < L; ++l) {
          if (!active[l]) continue;
          double dx_max = 0.0;
          for (std::size_t i = 0; i < n; ++i)
            dx_max = std::max(dx_max, std::abs(ws.x_new[i * L + l] - x[l][i]));
          if (dx_max <= opt.tol) {
            for (std::size_t i = 0; i < n; ++i) x[l][i] = ws.x_new[i * L + l];
            active[l] = 0;
            --n_active;
            continue;
          }
          const double scale = (dx_max > opt.dx_limit) ? opt.dx_limit / dx_max : 1.0;
          for (std::size_t i = 0; i < n; ++i)
            x[l][i] += scale * (ws.x_new[i * L + l] - x[l][i]);
        }
      }
      for (std::size_t l = 0; l < L; ++l) {
        if (!active[l]) continue;
        // Same policy as the scalar engine: accept weakly converged steps;
        // genuine divergence (NaNs) is isolated by the block below.
        bool finite = true;
        for (double v : x[l]) finite = finite && std::isfinite(v);
        if (finite) ++stats.lanes[l].weak_steps;
      }
    }

    // Fault injection + divergence isolation (both paths): a lane whose
    // iterate went non-finite is frozen at its last committed state and
    // the batch continues — the surviving lanes never notice.
    for (std::size_t l = 0; l < L; ++l) {
      if (failed[l]) continue;
      const bool poisoned = robust::fault(robust::FaultSite::kLaneStep, lane_fctx(l));
      if (poisoned) x[l][0] = std::numeric_limits<double>::quiet_NaN();
      bool finite = true;
      for (double v : x[l]) finite = finite && std::isfinite(v);
      if (finite) continue;
      ckt::TransientOptions lopt = lane_opt(l);
      auto info = detail::solve_error_info(robust::FailureKind::kTransientDivergence,
                                           "run_transient_lanes", lopt, t, ws.scalar);
      info.detail = poisoned ? "injected NaN residual (lane " + std::to_string(l) + ")"
                             : "lane " + std::to_string(l);
      x[l] = x_prev[l];
      num_cached = false;  // the next factor must see the identity restamp
      mark_failed(l, t, robust::SolveError(std::move(info)).what());
    }

    for (std::size_t l = 0; l < L; ++l) {
      if (failed[l]) continue;
      SimState st{x[l], x_prev[l], t, opt.dt, false, 1.0};
      for (const auto& dev : lanes[l]->devices()) dev->commit(st);
    }
    stage_frame();
    for (std::size_t l = 0; l < L; ++l) std::swap(x_prev[l], x[l]);
    for (std::size_t l = 0; l < L; ++l)
      if (!failed[l]) ++stats.lanes[l].steps;
  }

  if (buffered > 0) {
    for (std::size_t l = 0; l < L; ++l) {
      sig::SampleChunk chunk{flushed, buffered, channels,
                             ws.stream_buf.data() + l * chunk_frames * channels};
      sinks[l]->consume(chunk);
    }
  }
  for (sig::SampleSink* s : sinks) s->finish();

  for (SolveStats& s : stats.lanes) s.used_sparse = 1;  // lane batching is sparse-only
  for (const LaneFailure& f : stats.failures)
    if (f.failed) ++stats.failed_lanes;
  c_runs.add();
  c_lanes.add(L);
  c_batched_walk.add(static_cast<std::uint64_t>(stats.batched_walk_entries));
  c_scalar_walk.add(static_cast<std::uint64_t>(stats.scalar_walk_entries));
  return stats;
}

}  // namespace emc::ckt
