// Internal Newton/MNA solve machinery shared by the scalar engine
// (engine.cpp) and the lane-batched engine (lane_engine.cpp). Not part of
// the public surface — include circuit/engine.hpp instead.
#pragma once

#include <vector>

#include "circuit/engine.hpp"
#include "robust/fault.hpp"

namespace emc::ckt::detail {

/// Fault-injection probe context for this run/attempt (robust::fault):
/// the transient key plus the options the spare thresholds grade.
robust::FaultCtx fault_ctx(const TransientOptions& opt);

/// SolveErrorInfo skeleton shared by every engine throw site: kind, site,
/// run context, time/step/solver of the attempt, and the workspace's
/// Newton residual history.
robust::SolveErrorInfo solve_error_info(robust::FailureKind kind, const char* site,
                                        const TransientOptions& opt, double t,
                                        const NewtonWorkspace& ws);

/// True when no device's stamp depends on the candidate solution, i.e. the
/// MNA system G x = rhs is solved exactly by a single factorization.
bool circuit_is_linear(const Circuit& ckt);

/// Structure-discovery pass: stamp every device through a PatternStamper
/// at `state` and return the recorded positions (0-based, ground dropped).
std::vector<linalg::SparseCoord> stamp_pattern(Circuit& ckt, const SimState& state);

/// One damped Newton solve of the (non)linear MNA system at a fixed
/// (t, dt, dc, src_scale) configuration, through the backend
/// opt.solver resolves to for this mode. Returns true on convergence;
/// x holds the solution (or the last iterate on failure). All scratch
/// lives in `ws`: steady-state calls perform no heap allocation. When
/// `stats` is non-null, total_newton_iters and restamps accumulate into
/// it (callers decide which bucket DC iterations land in).
bool newton_solve(Circuit& ckt, NewtonWorkspace& ws, bool linear, std::vector<double>& x,
                  const std::vector<double>& x_prev, double t, double dt, bool dc,
                  double src_scale, const TransientOptions& opt, SolveStats* stats);

/// DC operating point with gmin continuation and source stepping; throws
/// robust::SolveError (kDcDivergence, detail = the schedule attempted)
/// when everything fails. When `stats` is non-null, fills
/// dc_newton_iters / dc_gmin_stages / dc_source_steps (and restamps).
void dc_operating_point_impl(Circuit& ckt, NewtonWorkspace& ws, bool linear,
                             std::vector<double>& x, const TransientOptions& opt,
                             SolveStats* stats = nullptr);

}  // namespace emc::ckt::detail
