// Concrete stamping targets behind the abstract ckt::Stamper interface.
//
// * DenseStamper: the classic dense MNA assembly (pre-sparse behavior,
//   bit-identical to the old concrete Stamper).
// * PatternStamper: value-free discovery pass recording every stamped
//   (row, col) position; SparsePattern::build() turns the list into CSR.
// * SparseStamper: assembly into one lane of a SparseMatrix, with the
//   right-hand side optionally strided for lane-batched systems.
//   Out-of-pattern stamps are collected instead of applied, so the engine
//   can grow the pattern and retry the assembly.
#pragma once

#include <span>
#include <vector>

#include "circuit/device.hpp"
#include "linalg/sparse.hpp"

namespace emc::ckt {

/// Dense MNA assembly: G(row-1, col-1) += val into a linalg::Matrix.
class DenseStamper final : public Stamper {
 public:
  DenseStamper(linalg::Matrix& g, std::span<double> rhs) : g_(g), rhs_(rhs) {}

  void g(int row_id, int col_id, double val) override {
    if (row_id == 0 || col_id == 0) return;
    g_(static_cast<std::size_t>(row_id) - 1, static_cast<std::size_t>(col_id) - 1) += val;
  }

  void rhs(int row_id, double val) override {
    if (row_id == 0) return;
    rhs_[static_cast<std::size_t>(row_id) - 1] += val;
  }

 private:
  linalg::Matrix& g_;
  std::span<double> rhs_;
};

/// Structure-discovery pass: records stamped matrix positions (0-based,
/// ground dropped), ignores all values and the right-hand side.
class PatternStamper final : public Stamper {
 public:
  void g(int row_id, int col_id, double val) override {
    (void)val;
    if (row_id == 0 || col_id == 0) return;
    coords_.push_back({row_id - 1, col_id - 1});
  }

  void rhs(int row_id, double val) override {
    (void)row_id;
    (void)val;
  }

  const std::vector<linalg::SparseCoord>& coords() const { return coords_; }
  std::vector<linalg::SparseCoord> take_coords() && { return std::move(coords_); }

 private:
  std::vector<linalg::SparseCoord> coords_;
};

/// Sparse assembly into lane `lane` of `a`. The right-hand side is
/// addressed as rhs[(row-1) * rhs_stride + rhs_offset], so one flat
/// n x lanes buffer serves every lane of a batched system (scalar use:
/// stride 1, offset 0). Stamps landing outside the pattern are recorded
/// in missed() — the caller appends them to its coordinate list, rebuilds
/// the pattern and re-runs the assembly.
class SparseStamper final : public Stamper {
 public:
  SparseStamper(linalg::SparseMatrix& a, std::span<double> rhs, std::size_t lane = 0,
                std::size_t rhs_stride = 1, std::size_t rhs_offset = 0)
      : a_(a), rhs_(rhs), lane_(lane), stride_(rhs_stride), offset_(rhs_offset) {}

  void g(int row_id, int col_id, double val) override {
    if (row_id == 0 || col_id == 0) return;
    if (!a_.add(row_id - 1, col_id - 1, val, lane_))
      missed_.push_back({row_id - 1, col_id - 1});
  }

  void rhs(int row_id, double val) override {
    if (row_id == 0) return;
    rhs_[(static_cast<std::size_t>(row_id) - 1) * stride_ + offset_] += val;
  }

  const std::vector<linalg::SparseCoord>& missed() const { return missed_; }

 private:
  linalg::SparseMatrix& a_;
  std::span<double> rhs_;
  std::size_t lane_;
  std::size_t stride_;
  std::size_t offset_;
  std::vector<linalg::SparseCoord> missed_;
};

}  // namespace emc::ckt
