// Transmission lines.
//
// * IdealLine: single lossless line via the method of characteristics
//   (Branin). Exact for any load, requires delay >= one time step.
// * ModalLineSegment: N-conductor lossless coupled segment. The RLGC
//   system is diagonalized once (Cholesky of C + Jacobi eigensolver of
//   S L S^T), giving N independent modal lines, each handled with the
//   method of characteristics.
// * add_coupled_lossy_line(): W-element-style lossy multiconductor line,
//   realized as a cascade of lossless modal segments with the series
//   resistance (dc + optional skin-effect R-L ladder) and the shunt
//   dielectric conductance lumped at the section boundaries.
#pragma once

#include <vector>

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"
#include "linalg/matrix.hpp"

namespace emc::ckt {

/// Lossless single line between port (ap, am) and port (bp, bm).
/// At DC it behaves as a (near-ideal) short between the corresponding
/// terminals so the operating point is well defined.
class IdealLine : public Device {
 public:
  /// Throws std::invalid_argument if z0 or td is non-positive.
  IdealLine(int ap, int am, int bp, int bm, double z0, double td);

  void start_step(const SimState& st) override;
  void stamp(Stamper& s, const SimState& st) const override;
  void commit(const SimState& st) override;
  void post_dc(const SimState& st) override;
  void reset() override;

  double z0() const { return z0_; }
  double td() const { return td_; }

 private:
  double wave_at(const std::vector<double>& hist, double t) const;

  int ap_, am_, bp_, bm_;
  double z0_, td_;
  double g_;  // 1/z0

  // Committed history of the backward/forward waves w = v + z0*i at each
  // end, sampled at the fixed engine step.
  double hist_t0_ = 0.0;
  double hist_dt_ = 0.0;
  std::vector<double> wave_a_, wave_b_;
  double ea_ = 0.0, eb_ = 0.0;  // incident terms for the step being solved
};

/// Per-conductor loss description of a coupled line (per meter).
struct LineLoss {
  double rdc = 0.0;       ///< series dc resistance [ohm/m]
  double rskin = 0.0;     ///< skin coefficient: R(f) ~ rdc + rskin*sqrt(f) [ohm/(m*sqrt(Hz))]
  double tan_delta = 0.0; ///< dielectric loss factor
  double f_ref = 1e9;     ///< frequency where the shunt G is evaluated [Hz]
};

/// Parameters of a uniform multiconductor line (Maxwellian matrices:
/// C off-diagonals are negative, L off-diagonals positive).
struct CoupledLineParams {
  linalg::Matrix l;  ///< inductance matrix [H/m], symmetric positive definite
  linalg::Matrix c;  ///< capacitance matrix [F/m], symmetric positive definite
  double length = 0.0;  ///< [m]
  LineLoss loss;
};

/// Lossless N-conductor coupled segment (reference conductor = ground).
class ModalLineSegment : public Device {
 public:
  /// nodes_a / nodes_b: the N terminal nodes at each end.
  /// Throws std::invalid_argument on inconsistent sizes or non-SPD L/C.
  ModalLineSegment(std::vector<int> nodes_a, std::vector<int> nodes_b,
                   const linalg::Matrix& l_per_m, const linalg::Matrix& c_per_m,
                   double length);

  void start_step(const SimState& st) override;
  void stamp(Stamper& s, const SimState& st) const override;
  void commit(const SimState& st) override;
  void post_dc(const SimState& st) override;
  void reset() override;

  std::size_t modes() const { return z0m_.size(); }
  /// Modal impedance in the *scaled* modal coordinates (units absorb the
  /// voltage/current transforms); use char_admittance() for physical ohms.
  double modal_z0(std::size_t m) const { return z0m_[m]; }
  double modal_td(std::size_t m) const { return tdm_[m]; }
  /// Physical characteristic admittance matrix Y_c [S].
  const linalg::Matrix& char_admittance() const { return y_; }

 private:
  double wave_at(const std::vector<double>& hist, double t) const;
  std::vector<double> modal_voltages(const SimState& st, const std::vector<int>& nodes) const;

  std::vector<int> na_, nb_;
  std::size_t n_;
  linalg::Matrix tv_inv_;  // modal voltage transform: vm = tv_inv * v
  linalg::Matrix ti_;      // physical currents: i = ti * im
  linalg::Matrix y_;       // port admittance ti * diag(1/z0m) * tv_inv
  std::vector<double> z0m_, tdm_;

  double hist_t0_ = 0.0;
  double hist_dt_ = 0.0;
  std::vector<std::vector<double>> wave_a_, wave_b_;  // per mode
  std::vector<double> ja_, jb_;                       // companion current sources
  std::vector<double> ea_, eb_;                       // modal incident terms
};

/// Handle to a lossy coupled line built into a circuit.
struct CoupledLineHandle {
  std::vector<int> nodes_a;  ///< near-end terminals (as passed in)
  std::vector<int> nodes_b;  ///< far-end terminals
  int sections = 0;
  std::vector<ModalLineSegment*> segments;
};

/// Build a lossy coupled multiconductor line between nodes_a and nodes_b as
/// a cascade of `sections` lossless modal segments with lumped losses.
/// `dt_hint` is the transient step the line will run at; the constructor
/// checks every modal section delay is >= dt_hint (throws otherwise).
/// Pass sections = 0 to auto-select the largest valid count (capped at 16).
CoupledLineHandle add_coupled_lossy_line(Circuit& ckt, const std::vector<int>& nodes_a,
                                         const std::vector<int>& nodes_b,
                                         const CoupledLineParams& params, double dt_hint,
                                         int sections = 0);

/// Fitted skin-effect ladder values (exposed for unit testing): series
/// branches (r_k, l_k) such that R0 + sum of engaged branches approximates
/// rdc*len + rskin*len*sqrt(f) between f_lo and f_hi.
struct SkinLadder {
  std::vector<double> r;  // [ohm]
  std::vector<double> l;  // [H]
};
SkinLadder fit_skin_ladder(double rskin_times_len, double f_lo, double f_hi, int branches);

}  // namespace emc::ckt
