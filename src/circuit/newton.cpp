#include "circuit/newton.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "circuit/stampers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace emc::ckt::detail {

static_assert(static_cast<int>(SolverKind::kDense) == robust::kSolverDenseAsInt,
              "robust::FaultSpec::spare_dense assumes SolverKind::kDense == 1");

robust::FaultCtx fault_ctx(const TransientOptions& opt) {
  robust::FaultCtx ctx;
  ctx.key = opt.context;
  ctx.solver = static_cast<int>(opt.solver);
  ctx.dt = opt.dt;
  ctx.gmin = opt.gmin;
  ctx.dx_limit = opt.dx_limit;
  return ctx;
}

robust::SolveErrorInfo solve_error_info(robust::FailureKind kind, const char* site,
                                        const TransientOptions& opt, double t,
                                        const NewtonWorkspace& ws) {
  robust::SolveErrorInfo info;
  info.kind = kind;
  info.site = site;
  info.context = opt.context;
  info.t = t;
  info.dt = opt.dt;
  info.solver = static_cast<int>(opt.solver);
  info.residual_history = ws.residual_history;
  return info;
}

bool circuit_is_linear(const Circuit& ckt) {
  for (const auto& dev : ckt.devices())
    if (dev->nonlinear()) return false;
  return true;
}

std::vector<linalg::SparseCoord> stamp_pattern(Circuit& ckt, const SimState& state) {
  PatternStamper ps;
  for (const auto& dev : ckt.devices()) dev->stamp(ps, state);
  return std::move(ps).take_coords();
}

namespace {

/// Resolve the backend for this solve's mode. Returns the mode's
/// SparseSystem when the sparse path is selected (building the pattern on
/// first use), nullptr for dense. The decision is cached in the system
/// until the workspace is invalidated, and depends only on structure and
/// options — never on values.
SparseSystem* resolve_sparse(Circuit& ckt, NewtonWorkspace& ws, const SimState& state,
                             bool dc, const TransientOptions& opt, std::size_t n) {
  if (opt.solver == SolverKind::kDense) return nullptr;
  if (opt.solver == SolverKind::kAuto && n < opt.sparse_min_unknowns) return nullptr;

  SparseSystem& s = dc ? ws.sp_dc : ws.sp_tr;
  if (!s.pattern_ready) {
    s.coords = stamp_pattern(ckt, state);
    s.pattern = linalg::SparsePattern::build(n, s.coords);
    s.pattern_ready = true;
    s.use_sparse = -1;
    s.a.set_pattern(&s.pattern, 1);
    s.num_cached = false;
  } else if (s.a.pattern() != &s.pattern || s.a.lanes() != 1) {
    // The workspace object moved since the pattern was built; rebind.
    s.a.set_pattern(&s.pattern, 1);
    s.num_cached = false;
  }
  if (s.use_sparse < 0) {
    const bool dense_enough =
        static_cast<double>(s.pattern.nnz()) <=
        opt.sparse_max_density * static_cast<double>(n) * static_cast<double>(n);
    s.use_sparse = (opt.solver == SolverKind::kSparse || dense_enough) ? 1 : 0;
  }
  return s.use_sparse == 1 ? &s : nullptr;
}

}  // namespace

bool newton_solve(Circuit& ckt, NewtonWorkspace& ws, bool linear, std::vector<double>& x,
                  const std::vector<double>& x_prev, double t, double dt, bool dc,
                  double src_scale, const TransientOptions& opt, SolveStats* stats) {
  static const obs::Counter c_restamps("ckt.newton.restamps");
  const std::size_t n = x.size();

  SparseSystem* sys;
  {
    SimState state{x, x_prev, t, dt, dc, src_scale};
    sys = resolve_sparse(ckt, ws, state, dc, opt, n);
  }

  const auto assemble_dense = [&] {
    ws.g.fill(0.0);
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);
    DenseStamper st(ws.g, ws.rhs);
    SimState state{x, x_prev, t, dt, dc, src_scale};
    for (const auto& dev : ckt.devices()) dev->stamp(st, state);
    for (std::size_t i = 0; i < n; ++i) ws.g(i, i) += opt.gmin;
  };

  const auto assemble_sparse = [&] {
    for (int attempt = 0;; ++attempt) {
      sys->a.clear_values();
      std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);
      SparseStamper st(sys->a, ws.rhs);
      SimState state{x, x_prev, t, dt, dc, src_scale};
      for (const auto& dev : ckt.devices()) dev->stamp(st, state);
      if (st.missed().empty()) {
        sys->a.add_diag(opt.gmin);
        return;
      }
      // A device stamped outside the discovered pattern (state-dependent
      // structure): grow the pattern by the missed positions and retry.
      if (attempt >= 3)
        throw robust::SolveError(solve_error_info(robust::FailureKind::kPatternUnstable,
                                                  "newton_solve", opt, t, ws));
      if (stats) ++stats->restamps;
      c_restamps.add();
      sys->coords.insert(sys->coords.end(), st.missed().begin(), st.missed().end());
      sys->pattern = linalg::SparsePattern::build(n, sys->coords);
      sys->a.set_pattern(&sys->pattern, 1);
      sys->num_cached = false;
    }
  };

  const auto assemble = [&] { sys ? assemble_sparse() : assemble_dense(); };

  const robust::FaultCtx fctx = fault_ctx(opt);
  // Injected singular pivots throw (a recordable failure the retry ladder
  // can escalate past); genuinely singular factorizations keep the
  // historical return-false semantics (weak-step tolerance).
  const auto probe_factor_fault = [&] {
    if (!robust::fault(robust::FaultSite::kFactor, fctx)) return;
    ws.lu_cached = false;
    if (sys) sys->num_cached = false;
    auto info = solve_error_info(robust::FailureKind::kSingularSystem, "newton_solve",
                                 opt, t, ws);
    info.detail = "injected singular pivot";
    throw robust::SolveError(std::move(info));
  };
  const auto check_deadline = [&] {
    if (opt.deadline == nullptr || !opt.deadline->expired()) return;
    char detail[64];
    std::snprintf(detail, sizeof detail, "wall budget %.3g s exhausted",
                  opt.deadline->budget_s());
    auto info = solve_error_info(robust::FailureKind::kDeadlineExceeded, "newton_solve",
                                 opt, t, ws);
    info.detail = detail;
    throw robust::SolveError(std::move(info));
  };

  ws.residual_history.clear();

  if (linear && opt.cache_lu) {
    // Linear fast path: the Jacobian depends only on (dt, dc, gmin) —
    // never on t, x, or src_scale, which enter the right-hand side only —
    // so factor once per configuration and reuse the factors for every
    // step. The single solve is exact; no damping loop is needed.
    assemble();
    if (stats) ++stats->total_newton_iters;
    probe_factor_fault();
    if (sys) {
      if (!sys->num_cached || sys->key_dt != dt || sys->key_dc != dc ||
          sys->key_gmin != opt.gmin) {
        try {
          obs::Span sp_factor("factor");
          sys->lu.factor(sys->a);
        } catch (const std::runtime_error&) {
          sys->num_cached = false;
          return false;  // singular system
        }
        sys->num_cached = true;
        sys->key_dt = dt;
        sys->key_dc = dc;
        sys->key_gmin = opt.gmin;
      }
      std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
      sys->lu.solve_in_place(ws.x_new);
    } else {
      if (!ws.lu_cached || ws.lu_dt != dt || ws.lu_dc != dc || ws.lu_gmin != opt.gmin) {
        try {
          obs::Span sp_factor("factor");
          ws.lu.factor(ws.g);
        } catch (const std::runtime_error&) {
          ws.lu_cached = false;
          return false;  // singular system
        }
        ws.lu_cached = true;
        ws.lu_dt = dt;
        ws.lu_dc = dc;
        ws.lu_gmin = opt.gmin;
      }
      std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
      ws.lu.solve_in_place(ws.x_new);
    }
    std::copy(ws.x_new.begin(), ws.x_new.end(), x.begin());
    return true;
  }

  for (int it = 0; it < opt.max_newton; ++it) {
    check_deadline();
    if (stats) ++stats->total_newton_iters;
    assemble();
    probe_factor_fault();
    try {
      obs::Span sp_factor("factor");
      if (sys)
        sys->lu.factor(sys->a);
      else
        ws.lu.factor(ws.g);
    } catch (const std::runtime_error&) {
      ws.lu_cached = false;
      if (sys) sys->num_cached = false;
      return false;  // singular system at this iterate
    }
    // The generic path leaves no reusable numeric factorization (the
    // symbolic analysis inside the SparseLu survives on its own).
    ws.lu_cached = false;
    if (sys) sys->num_cached = false;
    std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
    if (sys)
      sys->lu.solve_in_place(ws.x_new);
    else
      ws.lu.solve_in_place(ws.x_new);

    double dx_max = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      dx_max = std::max(dx_max, std::abs(ws.x_new[i] - x[i]));
    if (ws.residual_history.size() >= NewtonWorkspace::kResidualHistoryCap)
      ws.residual_history.erase(ws.residual_history.begin());
    ws.residual_history.push_back(dx_max);

    if (dx_max <= opt.tol) {
      std::copy(ws.x_new.begin(), ws.x_new.end(), x.begin());
      return true;
    }
    // Damping: clamp the update so nonlinear devices cannot be thrown far
    // outside their linearization region.
    const double scale = (dx_max > opt.dx_limit) ? opt.dx_limit / dx_max : 1.0;
    for (std::size_t i = 0; i < n; ++i) x[i] += scale * (ws.x_new[i] - x[i]);
  }
  return false;
}

void dc_operating_point_impl(Circuit& ckt, NewtonWorkspace& ws, bool linear,
                             std::vector<double>& x, const TransientOptions& opt,
                             SolveStats* stats) {
  static const obs::Counter c_runs("ckt.dc.runs");
  static const obs::Counter c_iters("ckt.dc.newton_iters");
  static const obs::Counter c_gmin("ckt.dc.gmin_stages");
  static const obs::Counter c_src("ckt.dc.source_steps");
  obs::Span span("dc");
  c_runs.add();

  if (robust::fault(robust::FaultSite::kDcSolve, fault_ctx(opt))) {
    auto info = solve_error_info(robust::FailureKind::kDcDivergence,
                                 "dc_operating_point", opt, opt.t_start, ws);
    info.detail = "injected dc divergence";
    throw robust::SolveError(std::move(info));
  }

  // Local tally, folded into `stats` and the counters on every exit path —
  // the continuation history matters most when the solve throws.
  SolveStats local;
  struct Fold {
    SolveStats& l;
    SolveStats* out;
    ~Fold() {
      c_iters.add(static_cast<std::uint64_t>(l.total_newton_iters));
      c_gmin.add(static_cast<std::uint64_t>(l.dc_gmin_stages));
      c_src.add(static_cast<std::uint64_t>(l.dc_source_steps));
      if (out) {
        out->dc_newton_iters += l.total_newton_iters;
        out->restamps += l.restamps;
        out->dc_gmin_stages += l.dc_gmin_stages;
        out->dc_source_steps += l.dc_source_steps;
      }
    }
  } fold{local, stats};

  const std::vector<double> zeros(x.size(), 0.0);

  // Divergence here is diagnosed from sweep logs where the circuit is long
  // gone — the exception must carry the whole continuation history.
  std::string attempted = "gmin schedule:";
  char buf[40];
  const auto note = [&](double v) {
    std::snprintf(buf, sizeof buf, " %g", v);
    attempted += buf;
  };

  // Strategy 1: gmin continuation from a heavily damped system.
  for (double gmin : {1e-2, 1e-4, 1e-6, 1e-9, opt.gmin}) {
    TransientOptions o = opt;
    o.gmin = std::max(gmin, opt.gmin);
    o.max_newton = 200;
    note(o.gmin);
    ++local.dc_gmin_stages;
    if (!newton_solve(ckt, ws, linear, x, zeros, opt.t_start, 0.0, /*dc=*/true, 1.0, o,
                      &local)) {
      // Restart the continuation with source stepping below.
      attempted += " (diverged)";
      break;
    }
    if (o.gmin == opt.gmin) return;
  }

  // Strategy 2: source stepping on top of gmin continuation. The failed
  // ladder solve left devices linearized around a diverged iterate — start
  // over from a clean slate: zero the solution AND reset device history.
  std::fill(x.begin(), x.end(), 0.0);
  for (const auto& dev : ckt.devices()) dev->reset();
  attempted += "; source-scale schedule (gmin 1e-9):";
  for (double scale : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    TransientOptions o = opt;
    o.max_newton = 300;
    o.gmin = 1e-9;
    note(scale);
    ++local.dc_source_steps;
    if (!newton_solve(ckt, ws, linear, x, zeros, opt.t_start, 0.0, true, scale, o,
                      &local)) {
      auto info = solve_error_info(robust::FailureKind::kDcDivergence,
                                   "dc_operating_point", opt, opt.t_start, ws);
      info.detail =
          "no convergence at source scale " + std::to_string(scale) + " [attempted " +
          attempted + "]";
      throw robust::SolveError(std::move(info));
    }
  }
  TransientOptions o = opt;
  o.max_newton = 300;
  if (!newton_solve(ckt, ws, linear, x, zeros, opt.t_start, 0.0, true, 1.0, o, &local)) {
    auto info = solve_error_info(robust::FailureKind::kDcDivergence,
                                 "dc_operating_point", opt, opt.t_start, ws);
    info.detail = "final polish failed [attempted " + attempted + "]";
    throw robust::SolveError(std::move(info));
  }
}

}  // namespace emc::ckt::detail
