#include "circuit/devices_linear.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::ckt {

Resistor::Resistor(int a, int b, double ohms) : a_(a), b_(b), g_(1.0 / ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("Resistor: resistance must be positive");
}

void Resistor::stamp(Stamper& s, const SimState&) const { s.conductance(a_, b_, g_); }

Capacitor::Capacitor(int a, int b, double farads) : a_(a), b_(b), c_(farads) {
  if (farads <= 0.0) throw std::invalid_argument("Capacitor: capacitance must be positive");
}

void Capacitor::start_step(const SimState& st) {
  geq_ = 2.0 * c_ / st.dt;
  const double v_prev = st.v_prev(a_) - st.v_prev(b_);
  ieq_ = geq_ * v_prev + i_prev_;
}

void Capacitor::stamp(Stamper& s, const SimState& st) const {
  if (st.dc) return;  // open circuit at DC
  s.conductance(a_, b_, geq_);
  s.current_source(b_, a_, ieq_);  // i = geq*v - ieq flowing a->b
}

void Capacitor::commit(const SimState& st) {
  if (st.dc) return;
  const double v = st.v(a_) - st.v(b_);
  i_prev_ = geq_ * v - ieq_;
}

void Capacitor::post_dc(const SimState&) { i_prev_ = 0.0; }

void Capacitor::reset() {
  i_prev_ = 0.0;
  geq_ = ieq_ = 0.0;
}

Inductor::Inductor(int a, int b, double henries) : a_(a), b_(b), l_(henries) {
  if (henries <= 0.0) throw std::invalid_argument("Inductor: inductance must be positive");
}

void Inductor::start_step(const SimState&) {}

void Inductor::stamp(Stamper& s, const SimState& st) const {
  const int j = extra_base_;
  // Branch current leaves a and enters b.
  s.g(a_, j, 1.0);
  s.g(b_, j, -1.0);
  if (st.dc) {
    // Short at DC: v(a) - v(b) = 0.
    s.g(j, a_, 1.0);
    s.g(j, b_, -1.0);
    return;
  }
  // Trapezoidal: v_n + v_prev = (2L/dt)(i_n - i_prev)
  const double req = 2.0 * l_ / st.dt;
  const double v_prev = st.v_prev(a_) - st.v_prev(b_);
  const double i_prev = st.v_prev(j);
  s.g(j, a_, 1.0);
  s.g(j, b_, -1.0);
  s.g(j, j, -req);
  s.rhs(j, -req * i_prev - v_prev);
}

void Inductor::reset() {}

VSource::VSource(int p, int m, std::function<double(double)> value)
    : p_(p), m_(m), value_(std::move(value)) {}

VSource::VSource(int p, int m, double dc_value)
    : p_(p), m_(m), value_([dc_value](double) { return dc_value; }) {}

void VSource::stamp(Stamper& s, const SimState& st) const {
  const int j = extra_base_;
  s.g(p_, j, 1.0);
  s.g(m_, j, -1.0);
  s.g(j, p_, 1.0);
  s.g(j, m_, -1.0);
  s.rhs(j, st.src_scale * value_(st.t));
}

ISource::ISource(int a, int b, std::function<double(double)> value)
    : a_(a), b_(b), value_(std::move(value)) {}

void ISource::stamp(Stamper& s, const SimState& st) const {
  s.current_source(a_, b_, st.src_scale * value_(st.t));
}

Vccs::Vccs(int a, int b, int ca, int cb, double gm)
    : a_(a), b_(b), ca_(ca), cb_(cb), gm_(gm) {}

void Vccs::stamp(Stamper& s, const SimState&) const {
  s.g(a_, ca_, gm_);
  s.g(a_, cb_, -gm_);
  s.g(b_, ca_, -gm_);
  s.g(b_, cb_, gm_);
}

Vcvs::Vcvs(int p, int m, int ca, int cb, double k)
    : p_(p), m_(m), ca_(ca), cb_(cb), k_(k) {}

void Vcvs::stamp(Stamper& s, const SimState&) const {
  const int j = extra_base_;
  s.g(p_, j, 1.0);
  s.g(m_, j, -1.0);
  s.g(j, p_, 1.0);
  s.g(j, m_, -1.0);
  s.g(j, ca_, -k_);
  s.g(j, cb_, k_);
}

TableCurrent::TableCurrent(int a, int b, std::vector<std::pair<double, double>> iv)
    : a_(a), b_(b), iv_(std::move(iv)) {
  if (iv_.size() < 2) throw std::invalid_argument("TableCurrent: need >= 2 points");
  if (!std::is_sorted(iv_.begin(), iv_.end(),
                      [](const auto& x, const auto& y) { return x.first < y.first; }))
    throw std::invalid_argument("TableCurrent: table must be sorted by voltage");
}

std::pair<double, double> TableCurrent::eval(double v) const {
  // Find segment; linear extrapolation with end slopes outside the table.
  std::size_t hi = 1;
  if (v >= iv_.back().first) {
    hi = iv_.size() - 1;
  } else if (v > iv_.front().first) {
    hi = static_cast<std::size_t>(
        std::upper_bound(iv_.begin(), iv_.end(), v,
                         [](double vv, const auto& p) { return vv < p.first; }) -
        iv_.begin());
  }
  const auto& p0 = iv_[hi - 1];
  const auto& p1 = iv_[hi];
  const double slope = (p1.second - p0.second) / (p1.first - p0.first);
  return {p0.second + slope * (v - p0.first), slope};
}

void TableCurrent::stamp(Stamper& s, const SimState& st) const {
  const double v = st.v(a_) - st.v(b_);
  const auto [i, g] = eval(v);
  s.nonlinear_current(a_, b_, scale_ * i, scale_ * g, v);
}

}  // namespace emc::ckt
