// Scenario enumeration for corner sweeps: the Cartesian product of the
// design/measurement axes an EMC engineer varies around one estimated port
// macromodel — supply corner, stimulus bit pattern, interconnect length,
// far-end load, and the receiver's detector / resolution bandwidth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace emc::sweep {

/// EMI-receiver detector whose trace is scored against the limit mask.
enum class Detector { kPeak, kQuasiPeak, kAverage };

const char* detector_name(Detector d);

/// Deterministic pseudo-random bit pattern ("0"/"1" string) of `n_bits`
/// bits derived from `seed` alone — a pure function with no global RNG
/// state, so a corner's stimulus depends only on its grid coordinates and
/// sweep results are bit-identical for any worker count or scheduling
/// order. Distinct seeds give distinct (LCG-decorrelated) patterns.
std::string prbs_bits(std::uint64_t seed, std::size_t n_bits);

/// The swept axes. Every vector must be non-empty; singleton axes (the
/// defaults) contribute no corners. `pattern_bits` is the stimulus length
/// per pattern period shared by all corners, so every corner produces an
/// equally long record (which is what lets per-worker FFT plans and MNA
/// workspaces be reused without reallocation).
struct CornerAxes {
  std::vector<double> vdd_scale{1.0};          ///< supply corner multiplier
  std::vector<std::uint64_t> pattern_seed{1};  ///< PRBS seed per corner
  std::vector<double> line_length{0.1};        ///< interconnect length [m]
  std::vector<double> load_c{1e-12};           ///< far-end load [F]
  std::vector<Detector> detector{Detector::kQuasiPeak};
  std::vector<double> rbw{20e6};               ///< receiver RBW [Hz]
  std::size_t pattern_bits = 15;               ///< stimulus bits per period
};

/// Axis identifiers, in the fixed mixed-radix order of the grid (first is
/// the slowest-varying digit of the corner index, last the fastest). The
/// order is chosen so the axes that only post-process an already-computed
/// transient record (receiver RBW, supply scale, detector choice) vary
/// fastest: corners sharing the expensive transient are then contiguous
/// in index order, which is what makes chunked scheduling plus the
/// per-worker record memo effective (see SweepRunner).
enum class AxisId : std::size_t {
  kPatternSeed = 0,
  kLineLength,
  kLoadC,
  kRbw,
  kVddScale,
  kDetector,
};
inline constexpr std::size_t kNumAxes = 6;

const char* axis_name(AxisId a);

/// One concrete corner: the decoded axis coordinates plus the resolved
/// axis values and the deterministic stimulus pattern.
struct Scenario {
  std::size_t index = 0;            ///< position in grid order
  std::size_t coord[kNumAxes] = {}; ///< per-axis value index

  double vdd_scale = 1.0;
  std::uint64_t pattern_seed = 1;
  double line_length = 0.1;
  double load_c = 1e-12;
  Detector detector = Detector::kQuasiPeak;
  double rbw = 20e6;
  std::string bits;  ///< prbs_bits(pattern_seed, pattern_bits)

  /// Compact human-readable corner tag, e.g.
  /// "vdd=0.95 seed=7 len=0.050m load=1.0pF det=qp rbw=20MHz".
  std::string label() const;
};

/// Enumerates CornerAxes into Scenarios. Corner `index` decodes as a
/// mixed-radix number over the axes in AxisId order: pattern_seed is the
/// slowest-varying axis, detector the fastest.
class CornerGrid {
 public:
  /// Throws std::invalid_argument when an axis is empty or pattern_bits
  /// is zero.
  explicit CornerGrid(CornerAxes axes);

  const CornerAxes& axes() const { return axes_; }

  /// Total number of corners (product of the axis sizes).
  std::size_t size() const { return size_; }

  std::size_t axis_size(AxisId a) const;

  /// Human-readable value of axis `a` at coordinate `k` (same formatting
  /// as Scenario::label), for per-axis aggregation tables.
  std::string axis_value_label(AxisId a, std::size_t k) const;

  /// Decode corner `index`; throws std::out_of_range past size().
  Scenario at(std::size_t index) const;

 private:
  CornerAxes axes_;
  std::size_t size_ = 0;
};

}  // namespace emc::sweep
