#include "sweep/corner_grid.hpp"

#include <cstdio>
#include <stdexcept>

#include "signal/sources.hpp"

namespace emc::sweep {

const char* detector_name(Detector d) {
  switch (d) {
    case Detector::kPeak: return "peak";
    case Detector::kQuasiPeak: return "qp";
    case Detector::kAverage: return "avg";
  }
  return "?";
}

const char* axis_name(AxisId a) {
  switch (a) {
    case AxisId::kVddScale: return "vdd_scale";
    case AxisId::kPatternSeed: return "pattern_seed";
    case AxisId::kLineLength: return "line_length";
    case AxisId::kLoadC: return "load_c";
    case AxisId::kDetector: return "detector";
    case AxisId::kRbw: return "rbw";
  }
  return "?";
}

std::string prbs_bits(std::uint64_t seed, std::size_t n_bits) {
  // Decorrelate consecutive seeds (1, 2, 3, ...) before feeding the LCG:
  // a splitmix64-style finalizer, so every axis value yields an unrelated
  // stream while remaining a pure function of the seed.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  sig::Lcg rng(z);
  std::string bits(n_bits, '0');
  for (auto& b : bits) b = rng.below(2) ? '1' : '0';
  return bits;
}

CornerGrid::CornerGrid(CornerAxes axes) : axes_(std::move(axes)) {
  if (axes_.vdd_scale.empty() || axes_.pattern_seed.empty() ||
      axes_.line_length.empty() || axes_.load_c.empty() || axes_.detector.empty() ||
      axes_.rbw.empty())
    throw std::invalid_argument("CornerGrid: every axis needs at least one value");
  if (axes_.pattern_bits == 0)
    throw std::invalid_argument("CornerGrid: pattern_bits must be positive");
  size_ = 1;
  for (std::size_t a = 0; a < kNumAxes; ++a) size_ *= axis_size(static_cast<AxisId>(a));
}

std::size_t CornerGrid::axis_size(AxisId a) const {
  switch (a) {
    case AxisId::kVddScale: return axes_.vdd_scale.size();
    case AxisId::kPatternSeed: return axes_.pattern_seed.size();
    case AxisId::kLineLength: return axes_.line_length.size();
    case AxisId::kLoadC: return axes_.load_c.size();
    case AxisId::kDetector: return axes_.detector.size();
    case AxisId::kRbw: return axes_.rbw.size();
  }
  return 0;
}

std::string CornerGrid::axis_value_label(AxisId a, std::size_t k) const {
  char buf[48];
  switch (a) {
    case AxisId::kVddScale:
      std::snprintf(buf, sizeof buf, "vdd=%.2f", axes_.vdd_scale.at(k));
      break;
    case AxisId::kPatternSeed:
      std::snprintf(buf, sizeof buf, "seed=%llu",
                    static_cast<unsigned long long>(axes_.pattern_seed.at(k)));
      break;
    case AxisId::kLineLength:
      std::snprintf(buf, sizeof buf, "len=%.3fm", axes_.line_length.at(k));
      break;
    case AxisId::kLoadC:
      std::snprintf(buf, sizeof buf, "load=%.1fpF", axes_.load_c.at(k) * 1e12);
      break;
    case AxisId::kDetector:
      std::snprintf(buf, sizeof buf, "det=%s", detector_name(axes_.detector.at(k)));
      break;
    case AxisId::kRbw:
      std::snprintf(buf, sizeof buf, "rbw=%.0fMHz", axes_.rbw.at(k) / 1e6);
      break;
  }
  return buf;
}

Scenario CornerGrid::at(std::size_t index) const {
  if (index >= size_) throw std::out_of_range("CornerGrid::at: corner index past size()");

  Scenario sc;
  sc.index = index;
  // Mixed-radix decode, fastest axis (rbw) extracted first.
  std::size_t rem = index;
  for (std::size_t a = kNumAxes; a-- > 0;) {
    const std::size_t radix = axis_size(static_cast<AxisId>(a));
    sc.coord[a] = rem % radix;
    rem /= radix;
  }

  sc.vdd_scale = axes_.vdd_scale[sc.coord[static_cast<std::size_t>(AxisId::kVddScale)]];
  sc.pattern_seed =
      axes_.pattern_seed[sc.coord[static_cast<std::size_t>(AxisId::kPatternSeed)]];
  sc.line_length =
      axes_.line_length[sc.coord[static_cast<std::size_t>(AxisId::kLineLength)]];
  sc.load_c = axes_.load_c[sc.coord[static_cast<std::size_t>(AxisId::kLoadC)]];
  sc.detector = axes_.detector[sc.coord[static_cast<std::size_t>(AxisId::kDetector)]];
  sc.rbw = axes_.rbw[sc.coord[static_cast<std::size_t>(AxisId::kRbw)]];
  sc.bits = prbs_bits(sc.pattern_seed, axes_.pattern_bits);
  return sc;
}

std::string Scenario::label() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "vdd=%.2f seed=%llu len=%.3fm load=%.1fpF det=%s rbw=%.0fMHz",
                vdd_scale, static_cast<unsigned long long>(pattern_seed), line_length,
                load_c * 1e12, detector_name(detector), rbw / 1e6);
  return buf;
}

}  // namespace emc::sweep
