// Parallel corner-sweep engine: run the transient -> spectrum -> swept
// EMI receiver -> compliance pipeline over every corner of a CornerGrid,
// sharing one immutable estimated macromodel across pool workers, and
// aggregate the per-corner verdicts into worst-margin statistics.
//
// Determinism contract: a corner's result is a pure function of its
// Scenario (devices mutate only their own per-corner circuit; the shared
// model is const — stamped through Device::stamp const). Results land in
// a per-corner slot and are aggregated sequentially in grid order, so the
// SweepSummary is bit-identical for any worker count or scheduling order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/engine.hpp"
#include "circuit/tline.hpp"
#include "core/driver_model.hpp"
#include "emc/adaptive.hpp"
#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "obs/json.hpp"
#include "robust/retry.hpp"
#include "sweep/corner_grid.hpp"
#include "sweep/thread_pool.hpp"

namespace emc::sweep {

/// Per-worker scratch reused across all corners a worker runs: the dense
/// Newton/MNA workspace (equal-sized corner circuits never reallocate it)
/// and the EMI scanner with its FFT plan (equal-length records plan once).
///
/// memo_key/memo_record are a single-entry memo for corner functions whose
/// expensive stage depends on only part of the scenario (the emission
/// pipeline's transient ignores the supply/detector/RBW axes). A memo hit
/// returns a record bit-identical to recomputing it — the cached value is
/// a pure function of the key — so memoization cannot perturb the sweep's
/// determinism contract. Corners sharing a key are adjacent in grid order
/// (see AxisId); claim them as one chunk to make the memo hit.
/// Receiver-scan accounting of one corner: how many detector passes its
/// scan spent, how many of them were adaptive refinement, and how many
/// mask crossings were certified. A pure function of the scenario (the
/// scan depends on the full corner, not just the transient memo key), so
/// it rides the summary without perturbing the determinism contract.
/// Fixed-plan corners report their grid size as detector_passes with
/// refined_points == 0.
struct ScanCounts {
  std::size_t refined_points = 0;
  std::size_t detector_passes = 0;
  std::size_t crossings = 0;

  bool operator==(const ScanCounts&) const = default;
};

struct Workspace {
  ckt::NewtonWorkspace newton;
  spec::EmiScanner scanner;
  std::string memo_key;
  sig::Waveform memo_record;

  /// Scan accounting of the last corner evaluated, overwritten by the
  /// corner function on every call (NOT memo state: post-processing axes
  /// change the scan under one memo key). SweepRunner copies it into the
  /// CornerResult after the corner function returns.
  ScanCounts scan;

  /// Transient-record memory of the corner that produced memo_record,
  /// filled by the corner function alongside the memo (pure functions of
  /// the memo key, so memo hits stay deterministic): bytes the streamed
  /// path actually held (chunk staging + steady-state record) and bytes a
  /// monolithic full record of every unknown would have held. SweepRunner
  /// copies them into each CornerResult after the corner function returns.
  std::size_t memo_streamed_bytes = 0;
  std::size_t memo_monolithic_bytes = 0;

  /// Solver statistics of the transient behind memo_record — a pure
  /// function of the memo key, like the bytes above — and whether the
  /// last corner evaluated hit the memo. Corner functions without a
  /// memoized stage may leave both untouched.
  ckt::SolveStats memo_solve;
  bool memo_hit = false;

  /// Escalation-ladder accounting of the transient behind memo_record
  /// (pure per memo key like memo_solve, because the ladder schedule and
  /// the fault harness are deterministic per transient key): attempts
  /// actually run (1 = first try succeeded) and whether the solve
  /// recovered after at least one failed attempt. Never reset per corner:
  /// a memo hit inherits the producing attempt's accounting, so every
  /// corner sharing a recovered transient reads as recovered. SweepRunner
  /// copies both into the CornerResult after the corner function returns.
  int memo_attempts = 1;
  bool memo_recovered = false;
};

/// Verdict of one corner. `wall_s` and `worker` are diagnostic only —
/// they never enter the summary, which must be scheduling-independent.
struct CornerResult {
  Scenario scenario;
  spec::ComplianceReport report;
  double wall_s = 0.0;

  /// Peak transient-record bytes of the streamed pipeline for this corner
  /// (chunk staging + retained steady-state record) and the monolithic
  /// full-record footprint it replaced. Deterministic per scenario; 0 when
  /// the corner function does not report memory.
  std::size_t streamed_record_bytes = 0;
  std::size_t monolithic_record_bytes = 0;

  /// Solver statistics of the transient behind this corner's record.
  /// Memo hits repeat the producing corner's stats (pure per memo key),
  /// flagged by transient_reused.
  ckt::SolveStats solve;
  bool transient_reused = false;
  std::size_t worker = 0;  ///< pool worker that evaluated this corner

  /// Solver-failure record. When the corner's solve failed past the retry
  /// ladder and the sweep isolated it, solver_failed is set, `failure`
  /// carries the formatted robust::SolveError (corner identity attached)
  /// and `report` is empty. Both strings are empty on success.
  bool solver_failed = false;
  std::string failure;
  std::string failure_kind;  ///< robust::failure_kind_name() of the failure

  /// Escalation-ladder attempts behind this corner's transient (1 = first
  /// try) and whether it recovered after a failed attempt. Deterministic
  /// per scenario, like the solve stats.
  int solve_attempts = 1;
  bool recovered = false;

  /// Receiver-scan accounting (detector passes / refined points /
  /// certified crossings). Deterministic per scenario; all zero for
  /// solver casualties.
  ScanCounts scan;

  /// Slot restored from a checkpoint journal instead of being evaluated
  /// (wall_s/worker are zero for such corners — they ran in a prior
  /// process). Scheduling-dependent, never journaled or summarized.
  bool from_checkpoint = false;
};

/// Fixed-bin histogram of per-corner worst margins; corners outside the
/// range are folded into the edge bins.
struct MarginHistogram {
  double lo_db = -40.0;
  double hi_db = 40.0;
  std::size_t n_bins = 16;
  std::vector<std::size_t> counts;  ///< filled by summarize()

  bool operator==(const MarginHistogram&) const = default;
};

/// Worst-margin statistics over a finished sweep.
struct SweepSummary {
  std::size_t corners = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t uncovered = 0;  ///< corners whose mask covered no scan point
  /// Corners whose report came from a truncated scan (skipped_scan_points
  /// > 0): their pass/fail verdict covers only part of the requested
  /// span, so a sweep with truncated == corners can "pass" while never
  /// measuring above the record's Nyquist rate.
  std::size_t truncated = 0;

  /// Corners whose solve failed past the retry ladder (isolated; no
  /// report). Deliberately distinct from `uncovered`: a solver casualty
  /// is an execution failure, not a mask-coverage property, and mixing
  /// the two would let a crashing sweep masquerade as a narrow mask.
  std::size_t solver_failed = 0;
  /// Corners whose solve succeeded only after ladder escalation.
  std::size_t recovered = 0;

  /// Summed receiver-scan accounting over the corners that ran: total
  /// detector passes, adaptive refined points, and certified mask
  /// crossings (all zero on fixed-plan sweeps except detector_passes).
  std::size_t scan_detector_passes = 0;
  std::size_t scan_refined_points = 0;
  std::size_t scan_crossings = 0;

  /// Min over covered corners; +infinity when every corner was uncovered
  /// (so "nothing scored" can never read as a genuine 0.0 dB margin).
  double worst_margin_db = 0.0;
  std::size_t worst_corner = 0;  ///< grid index of that corner; SIZE_MAX if none
  std::string worst_label;       ///< its Scenario::label(); empty if none

  /// axis_worst[a][k]: worst margin among covered corners whose axis `a`
  /// coordinate is `k` (+inf when no covered corner hits that value) —
  /// the "which axis value drives the failures" table.
  std::vector<std::vector<double>> axis_worst;

  /// axis_solver_failed[a][k]: solver-failed corners per axis value — the
  /// "which axis value breaks the solver" attribution table, same shape
  /// as axis_worst.
  std::vector<std::vector<std::size_t>> axis_solver_failed;

  /// Max over corners of the per-corner record footprints: what the
  /// streamed transient path held at peak vs. what a monolithic
  /// full-record run would have held (0 when corners report no memory).
  std::size_t peak_streamed_record_bytes = 0;
  std::size_t peak_monolithic_record_bytes = 0;

  MarginHistogram histogram;

  bool operator==(const SweepSummary&) const = default;
};

/// Per-corner evaluation: Scenario -> ComplianceReport using only
/// worker-local scratch plus shared *immutable* inputs. May throw; the
/// sweep rethrows the first failure after the loop drains.
using CornerFn =
    std::function<spec::ComplianceReport(const Scenario&, Workspace&)>;

struct SweepOutcome {
  std::vector<CornerResult> results;  ///< grid order
  SweepSummary summary;

  /// Per-worker pool utilization over this run (index = worker id).
  /// Diagnostic, scheduling-dependent; empty for drivers that bypass the
  /// pool (the lane-batched sweep runs single-threaded).
  std::vector<WorkerStats> workers;
};

/// Contiguous grid-index range [begin, end) for sharded sweeps. The
/// default covers the whole grid; `end` is clamped to grid.size(). Shards
/// run over the SAME grid (not a sub-grid), so every shard's summary keeps
/// the full per-axis table shape and N shard reports merged with
/// obs::merge_run_reports equal the single-process report field for field.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = SIZE_MAX;

  bool whole_grid(std::size_t grid_size) const {
    return begin == 0 && end >= grid_size;
  }
};

/// Deterministic sequential aggregation of per-corner reports (exposed
/// separately so tests can feed hand-built reports).
SweepSummary summarize(const CornerGrid& grid, std::span<const CornerResult> results,
                       const MarginHistogram& histogram_spec = {});

/// summarize() for a shard: `results` covers any subset of the grid's
/// corners (each CornerResult carries its own Scenario). Axis tables keep
/// the full grid shape; values whose corners live outside the shard stay
/// at the +infinity "nothing scored" sentinel.
SweepSummary summarize_shard(const CornerGrid& grid, std::span<const CornerResult> results,
                             const MarginHistogram& histogram_spec = {});

/// Progress observer: invoked after every finished corner with
/// (corners_done, corners_total). Runs on whichever worker finished the
/// corner, concurrently with other workers — it must be thread-safe and
/// cheap, and it observes completion order, not grid order.
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/// Thrown by SweepRunner::run when RunOptions::stop was raised: workers
/// stopped claiming corners, the pool drained, and (when journaling)
/// every corner that finished is on disk for a resume.
class SweepAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Full control surface of SweepRunner::run; the positional legacy
/// overload forwards here.
struct RunOptions {
  MarginHistogram histogram{};
  std::size_t chunk = 1;  ///< corners claimed per scheduling step
  ProgressFn progress{};
  ShardRange shard{};

  /// Capture a corner's robust::SolveError into its CornerResult
  /// (solver_failed + failure text) instead of failing the sweep — the
  /// remaining corners still run and the summary counts the casualty
  /// under solver_failed. Off restores the pre-isolation behavior (first
  /// failure rethrown after the loop drains). Exceptions that are not
  /// SolveError always propagate: they signal bugs, not solver trouble.
  bool isolate_failures = true;

  /// Append every finished corner (successes and isolated failures) to
  /// this JSON-lines checkpoint journal, and before running restore the
  /// corners already present — matching grid indices inside the shard are
  /// skipped and flagged from_checkpoint. Doubles round-trip exactly
  /// (%.17g), so a killed shard resumed over the same journal produces a
  /// summary and per-corner reports byte-identical to an uninterrupted
  /// run. Empty disables checkpointing.
  std::string journal_path;

  /// Cooperative abort: when *stop becomes true, workers stop claiming
  /// corners and run() throws SweepAborted after the pool drains (the
  /// journal then holds every finished corner). Null = never aborted.
  const std::atomic<bool>* stop = nullptr;
};

/// One scenario-axis subdivision: insert `value` into axis `axis` after
/// its value index `after` (indices refer to the grid the plan was
/// computed from). Values are geometric midpoints — the axes the planner
/// refines are positive physical quantities swept log-like.
struct AxisInsertion {
  AxisId axis = AxisId::kLineLength;
  std::size_t after = 0;
  double value = 0.0;

  bool operator==(const AxisInsertion&) const = default;
};

/// Scenario-axis refinement plan from a finished sweep's worst-margin
/// table: for every numeric axis (line length, load, RBW, supply scale)
/// whose per-value worst margins flip between pass (>= 0 dB) and fail,
/// subdivide that pass/fail boundary with the geometric midpoint of the
/// two axis values. Values with no covered corner (+inf sentinel) never
/// form a boundary. Deterministic: a pure function of (grid, summary).
std::vector<AxisInsertion> plan_axis_refinement(const CornerGrid& grid,
                                                const SweepSummary& summary);

/// Apply a refinement plan to the axes that produced it: each insertion
/// lands after its `after` index, keeping the axis sorted as given.
CornerAxes apply_refinement(const CornerAxes& axes,
                            std::span<const AxisInsertion> plan);

/// Result of one refinement stage: the subdivided grid, a full
/// SweepOutcome over it (carried-over corners keep their prior results
/// bit-for-bit; only corners touching an inserted axis value were
/// evaluated), and the plan that produced it.
struct RefineOutcome {
  CornerGrid grid{CornerAxes{}};  ///< placeholder until a driver fills it
  SweepOutcome outcome;
  std::vector<AxisInsertion> plan;
  std::size_t reused = 0;     ///< corners copied from the prior outcome
  std::size_t evaluated = 0;  ///< corners newly evaluated
};

/// Owns the thread pool and one Workspace per worker.
class SweepRunner {
 public:
  /// See sweep::ProgressFn (kept as a member alias for existing callers).
  using ProgressFn = emc::sweep::ProgressFn;

  /// `jobs` worker threads (including the caller); clamped to >= 1.
  explicit SweepRunner(std::size_t jobs);

  std::size_t jobs() const { return pool_.workers(); }

  /// Evaluate every corner of `grid` through `fn` and aggregate. Corner
  /// order in the result vector is grid order regardless of scheduling.
  /// `chunk` consecutive corners are claimed per scheduling step (pass
  /// emission_chunk_hint(grid) so corners sharing a transient stay on one
  /// worker and its record memo hits); results are chunk-invariant.
  /// `shard` restricts the run to a contiguous grid-index range for
  /// sharded execution: results hold only that range (grid order) and the
  /// summary comes from summarize_shard().
  SweepOutcome run(const CornerGrid& grid, const CornerFn& fn,
                   const MarginHistogram& histogram_spec = {}, std::size_t chunk = 1,
                   const ProgressFn& progress = {}, ShardRange shard = {});

  /// Same run with the full option set: failure isolation, checkpoint
  /// journal + resume, cooperative abort. See RunOptions.
  SweepOutcome run(const CornerGrid& grid, const CornerFn& fn, const RunOptions& opt);

  /// Scenario-axis refinement stage: subdivide `grid`'s axes around the
  /// pass/fail boundaries in `prior.summary` (plan_axis_refinement),
  /// carry every prior corner's result over to the refined grid
  /// unchanged, and evaluate only the corners touching an inserted axis
  /// value through `fn` (worker memos apply — new corners are claimed in
  /// grid order, so runs sharing a transient still hit). `prior` must be
  /// a whole-grid outcome (results.size() == grid.size()); journaling and
  /// abort are not supported here (opt.journal_path/stop are ignored).
  /// An empty plan returns the prior outcome re-labelled on a copy of the
  /// grid. Deterministic for any worker count, like run().
  RefineOutcome refine(const CornerGrid& grid, const SweepOutcome& prior,
                       const CornerFn& fn, const RunOptions& opt = {});

 private:
  ThreadPool pool_;
  std::vector<Workspace> workspaces_;
};

/// One finished corner as a checkpoint-journal entry: grid index plus
/// every schedule-independent CornerResult field, doubles spelled with
/// robust::exact_double so decoding reproduces them bit-for-bit.
obs::Json corner_journal_json(std::size_t grid_index, const CornerResult& r);

/// Inverse of corner_journal_json. The scenario is NOT restored (callers
/// re-derive it from the grid — it is a pure function of the index, which
/// is returned through `grid_index`). Throws on malformed entries.
CornerResult corner_from_journal(const obs::Json& entry, std::size_t& grid_index);

/// Deterministic per-corner record for reports and benches: corner
/// identity, solver-failure record, ladder accounting and the compliance
/// verdict — none of the scheduling-dependent fields (wall_s, worker,
/// transient_reused, from_checkpoint), so two equal sweeps emit equal
/// arrays for any worker count, chunking or resume history.
obs::Json corner_result_json(const CornerResult& r);

/// JSON spelling of one margin: finite values are numbers, the +infinity
/// "nothing scored" sentinel becomes the string "uncovered".
obs::Json margin_json(double margin_db);

/// The summary as a JSON object — the schema BENCH_sweep.json, the corner
/// sweep example and RunReports share (corners/passed/failed counts,
/// worst margin + corner, per-axis worst table over non-singleton axes,
/// record-memory peaks, margin histogram).
obs::Json summary_json(const CornerGrid& grid, const SweepSummary& s);

/// Pool utilization as a JSON array of per-worker rows (busy/idle seconds,
/// items, busy fraction of the epochs' wall time).
obs::Json worker_stats_json(std::span<const WorkerStats> workers);

/// Configuration of the bus-emission corner pipeline: two PW-RBF drivers
/// from one shared immutable macromodel on a lossy coupled line (the
/// paper's Fig. 3 structure), aggressor repeating its PRBS pattern while
/// the victim holds Low. Scenario axes override the line length, far-end
/// load, stimulus pattern and receiver settings per corner.
struct EmissionSweepConfig {
  const core::PwRbfDriverModel* model = nullptr;  ///< shared, outlives the sweep
  ckt::CoupledLineParams line;  ///< base 2-conductor line; length set per corner
  int sections = 0;             ///< modal sections per corner (0 = auto)
  double bit_time = 1e-9;       ///< stimulus bit period [s]
  int periods = 3;              ///< simulated pattern repetitions; the first is
                                ///< discarded as startup transient
  spec::ReceiverSettings rx;    ///< base receiver; rbw/name set per corner
  spec::LimitMask mask;         ///< limit the detector trace is scored against
  double dt = 25e-12;           ///< engine step = model sampling time Ts

  /// Per-worker streaming budget for the transient chunk staging buffer.
  /// The corner transient runs through run_transient_streamed probing only
  /// the measured land, with chunk_frames = budget / (8 * channels)
  /// (clamped to [64, 65536]); the buffer lives in the worker's
  /// NewtonWorkspace and is reused across every corner the worker runs.
  std::size_t stream_budget_bytes = 64 * 1024;

  /// MNA backend for the corner transients. Lane-batched sweeps require a
  /// sparse backend; to compare a scalar sweep bit-for-bit against
  /// run_emission_sweep_lanes, set kSparse on both sides.
  ckt::SolverKind solver = ckt::SolverKind::kAuto;

  /// Retry/escalation ladder for failing corner transients (see
  /// robust::RetryPolicy). The default retries; retry.enabled = false is
  /// the pre-robustness single-attempt path, byte-identical when nothing
  /// fails. The ladder schedule is a pure function of the corner, so
  /// retried sweeps stay deterministic for any worker count. refine_dt is
  /// forced off internally: the engine step is pinned to the macromodel's
  /// sampling time Ts, so the "dt/2" stage runs as a plain re-attempt.
  robust::RetryPolicy retry;

  /// How each corner lays out its receiver scan: kFixed runs the classic
  /// rx.n_points log grid; kAdaptive runs the coarse-pass + certified
  /// refinement planner (spec::adaptive_scan) under `adaptive`, spending
  /// detector passes only where the spectrum approaches or crosses the
  /// mask. Both are pure per scenario, so either keeps the sweep's
  /// determinism contract.
  spec::ScanPlan scan_plan = spec::ScanPlan::kFixed;
  spec::AdaptiveScanConfig adaptive;
};

/// Build the corner function running the full pipeline:
/// transient (far-end active-land voltage) -> steady-state slice ->
/// supply-corner scaling -> swept EMI receiver -> compliance report of the
/// scenario's detector trace against cfg.mask.
///
/// The supply axis is applied as a first-order approximation: port
/// waveforms (and thus emission levels) scale ~linearly with VDD, so the
/// steady record is multiplied by vdd_scale rather than re-estimating the
/// macromodel per supply corner. The config is copied into the returned
/// closure; only `model` is referenced and must outlive it.
CornerFn make_emission_corner_fn(const EmissionSweepConfig& cfg);

/// Scheduling chunk for the emission pipeline: corners differing only in
/// the post-processing axes (RBW, supply scale, detector) share one
/// transient record and are contiguous in grid order; claiming the whole
/// run as a chunk makes the worker's record memo hit for all but the
/// first of them. Returns axis_size(rbw) * axis_size(vdd) * axis_size(det).
std::size_t emission_chunk_hint(const CornerGrid& grid);

/// Identity of the transient behind a corner: the memo key the emission
/// pipeline uses (pattern bits + line length + load, %.17g exact) and the
/// TransientOptions::context it runs under. Key robust::FaultSpec entries
/// to this string to target one transient group deterministically —
/// corners differing only in post-processing axes share it.
std::string emission_transient_key(const Scenario& sc);

/// Telemetry of a lane-batched emission sweep: how many transients
/// actually ran, how they were batched, and the solver pattern-walk
/// entries the batched kernels performed vs. what the identical solves
/// would have walked corner by corner (see LaneRunStats — the ratio is
/// the structural work reduction of lane batching).
struct LaneSweepInfo {
  std::size_t transients = 0;  ///< unique transient groups simulated
  std::size_t batches = 0;     ///< lane batches dispatched
  unsigned long long batched_walk_entries = 0;
  unsigned long long scalar_walk_entries = 0;

  /// Lanes whose batched transient diverged and were evicted to a scalar
  /// retry under the escalation ladder (survivor lanes kept running).
  std::size_t demoted = 0;
};

/// Lane-batched counterpart of SweepRunner + make_emission_corner_fn for
/// the emission pipeline: corners sharing a transient are grouped (one
/// group = one lane), consecutive groups sharing the line topology and
/// pattern length are advanced in lockstep through run_transient_lanes
/// (up to `max_lanes` at a time), then every corner is post-processed
/// exactly as the scalar corner function would.
///
/// Per-lane arithmetic is bit-identical to the scalar sparse engine, so
/// the SweepOutcome::summary equals a SweepRunner run of the same grid
/// with cfg.solver = kSparse. cfg.solver must not be kDense
/// (std::invalid_argument). `wall_s` per corner is the batch wall time
/// split evenly — diagnostic only, as in the scalar runner.
///
/// Failure isolation: a lane whose batched transient diverges is frozen
/// by the lane engine while the survivors continue bit-identically, then
/// demoted here to a scalar retry under cfg.retry's escalation ladder
/// (LaneSweepInfo::demoted counts evictions). A lane that still fails
/// past the ladder is recorded per corner (CornerResult::solver_failed),
/// never thrown — matching SweepRunner's isolating run.
SweepOutcome run_emission_sweep_lanes(const EmissionSweepConfig& cfg,
                                      const CornerGrid& grid,
                                      std::size_t max_lanes = 4,
                                      const MarginHistogram& histogram_spec = {},
                                      LaneSweepInfo* info = nullptr);

/// Lane-batched counterpart of SweepRunner::refine: subdivide the grid's
/// axes around the pass/fail boundaries of `prior.summary`, carry prior
/// corners over unchanged, and advance only the new corners through the
/// lane-batched transient engine (new corners sharing topology are
/// batched exactly like a fresh lane sweep). Same config restrictions as
/// run_emission_sweep_lanes; `prior` must be a whole-grid outcome.
RefineOutcome refine_emission_sweep_lanes(const EmissionSweepConfig& cfg,
                                          const CornerGrid& grid,
                                          const SweepOutcome& prior,
                                          std::size_t max_lanes = 4,
                                          const MarginHistogram& histogram_spec = {},
                                          LaneSweepInfo* info = nullptr);

}  // namespace emc::sweep
