#include "sweep/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>

#include "circuit/devices_linear.hpp"
#include "circuit/lane_engine.hpp"
#include "circuit/netlist.hpp"
#include "core/driver_device.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/journal.hpp"

namespace emc::sweep {

namespace {

/// One corner's transient setup — circuit, probe, step geometry — shared
/// verbatim between the scalar corner function and the lane-batched sweep
/// so both simulate the identical system (device order included: the
/// stamp order decides the sparse pattern's coordinate stream).
struct CornerTransient {
  ckt::Circuit c;
  int b1 = 0;                   ///< measured far-end land (the only probe)
  std::size_t per_period = 0;   ///< frames per stimulus pattern period
  std::size_t chunk_frames = 0;
  ckt::TransientOptions opt;
};

std::string emission_memo_key(const Scenario& sc) {
  char key[96];
  std::snprintf(key, sizeof key, "|%.17g|%.17g", sc.line_length, sc.load_c);
  return sc.bits + key;
}

/// Base transient options of a corner — what build_emission_transient
/// would set — without building the circuit. The retry ladder escalates
/// from these; opt.context carries the corner's transient identity into
/// failure reports and the fault harness.
ckt::TransientOptions emission_base_options(const EmissionSweepConfig& cfg,
                                            const Scenario& sc) {
  const double period = cfg.bit_time * static_cast<double>(sc.bits.size());
  ckt::TransientOptions opt;
  opt.dt = cfg.dt;
  opt.t_stop = period * static_cast<double>(cfg.periods);
  opt.solver = cfg.solver;
  opt.context = emission_memo_key(sc);
  return opt;
}

/// cfg.retry with dt refinement forced off: the emission transient's
/// engine step is pinned to the macromodel's sampling time Ts
/// (DriverDevice rejects any other dt), so the ladder's "dt/2" stage must
/// degrade to a plain re-attempt at the base step.
robust::RetryPolicy emission_retry_policy(const EmissionSweepConfig& cfg) {
  robust::RetryPolicy p = cfg.retry;
  p.refine_dt = false;
  return p;
}

std::unique_ptr<CornerTransient> build_emission_transient(const EmissionSweepConfig& cfg,
                                                          const Scenario& sc) {
  auto out = std::make_unique<CornerTransient>();
  ckt::Circuit& c = out->c;
  const int a1 = c.node();
  const int a2 = c.node();
  out->b1 = c.node();
  const int b2 = c.node();

  ckt::CoupledLineParams line = cfg.line;
  line.length = sc.line_length;
  add_coupled_lossy_line(c, {a1, a2}, {out->b1, b2}, line, cfg.dt, cfg.sections);
  c.add<ckt::Capacitor>(out->b1, c.ground(), sc.load_c);
  c.add<ckt::Capacitor>(b2, c.ground(), sc.load_c);

  std::string active_bits;
  for (int p = 0; p < cfg.periods; ++p) active_bits += sc.bits;
  const std::string quiet_bits(active_bits.size(), '0');
  c.add<core::DriverDevice>(a1, *cfg.model, active_bits, cfg.bit_time);
  c.add<core::DriverDevice>(a2, *cfg.model, quiet_bits, cfg.bit_time);

  const double period = cfg.bit_time * static_cast<double>(sc.bits.size());
  out->opt = emission_base_options(cfg, sc);
  out->per_period = static_cast<std::size_t>(std::lround(period / cfg.dt));
  out->chunk_frames =
      std::clamp<std::size_t>(cfg.stream_budget_bytes / sizeof(double), 64, 65536);
  return out;
}

spec::TraceSel detector_trace(Detector d) {
  switch (d) {
    case Detector::kPeak: return spec::TraceSel::kPeak;
    case Detector::kQuasiPeak: return spec::TraceSel::kQuasiPeak;
    default: return spec::TraceSel::kAverage;
  }
}

/// Supply scaling + receiver scan + mask check of one steady record: the
/// post-transient tail of the corner pipeline, pure in (record, scenario).
/// `counts` receives the corner's scan accounting (detector passes spent,
/// adaptive refined points, certified crossings).
spec::ComplianceReport post_process_corner(const EmissionSweepConfig& cfg,
                                           const Scenario& sc,
                                           const sig::Waveform& steady_record,
                                           spec::EmiScanner& scanner,
                                           ScanCounts& counts) {
  // First-order supply corner: emission levels scale ~linearly with VDD.
  sig::Waveform record = steady_record;
  record *= sc.vdd_scale;

  spec::ReceiverSettings rx = cfg.rx;
  rx.rbw = sc.rbw;
  counts = ScanCounts{};

  if (cfg.scan_plan == spec::ScanPlan::kAdaptive) {
    // Coarse pass + certified refinement: the crossing brackets are
    // already folded into the merged scan, so the report flows through
    // the same check_compliance machinery as the fixed plan.
    const spec::CertifiedScan cs =
        spec::adaptive_scan(scanner, record, rx, cfg.mask, detector_trace(sc.detector),
                            cfg.adaptive, sc.label());
    counts.refined_points = cs.refined_points;
    counts.detector_passes = cs.detector_passes;
    counts.crossings = cs.crossings.size();
    return cs.report;
  }

  const auto scan = scanner.scan(record, rx);
  counts.detector_passes = scan.size();
  const std::vector<double>* trace = nullptr;
  switch (sc.detector) {
    case Detector::kPeak: trace = &scan.peak_dbuv; break;
    case Detector::kQuasiPeak: trace = &scan.quasi_peak_dbuv; break;
    case Detector::kAverage: trace = &scan.average_dbuv; break;
  }
  // A scan truncated at the record's Nyquist rate must not silently
  // pass the mask — carry the dropped-point count into the report.
  return spec::check_compliance(scan.freq, *trace, cfg.mask, sc.label(),
                                scan.skipped_points);
}

void validate_emission_config(const EmissionSweepConfig& cfg, const char* who) {
  if (!cfg.model) throw std::invalid_argument(std::string(who) + ": null model");
  if (cfg.periods < 2)
    throw std::invalid_argument(std::string(who) +
                                ": need >= 2 periods (the first is discarded)");
  if (cfg.line.l.rows() != 2 || cfg.line.c.rows() != 2)
    throw std::invalid_argument(std::string(who) + ": line must have 2 conductors");
}

}  // namespace

std::string emission_transient_key(const Scenario& sc) {
  return emission_memo_key(sc);
}

SweepSummary summarize(const CornerGrid& grid, std::span<const CornerResult> results,
                       const MarginHistogram& histogram_spec) {
  if (results.size() != grid.size())
    throw std::invalid_argument("summarize: results/grid size mismatch");
  return summarize_shard(grid, results, histogram_spec);
}

SweepSummary summarize_shard(const CornerGrid& grid, std::span<const CornerResult> results,
                             const MarginHistogram& histogram_spec) {
  if (histogram_spec.n_bins == 0 || !(histogram_spec.hi_db > histogram_spec.lo_db))
    throw std::invalid_argument("summarize: bad histogram spec");

  SweepSummary s;
  s.corners = results.size();
  s.histogram = histogram_spec;
  s.histogram.counts.assign(histogram_spec.n_bins, 0);
  // "Nothing scored" sentinels; overwritten by the first covered corner.
  s.worst_margin_db = std::numeric_limits<double>::infinity();
  s.worst_corner = SIZE_MAX;

  s.axis_worst.resize(kNumAxes);
  s.axis_solver_failed.resize(kNumAxes);
  for (std::size_t a = 0; a < kNumAxes; ++a) {
    s.axis_worst[a].assign(grid.axis_size(static_cast<AxisId>(a)),
                           std::numeric_limits<double>::infinity());
    s.axis_solver_failed[a].assign(grid.axis_size(static_cast<AxisId>(a)), 0);
  }

  const double bin_width =
      (histogram_spec.hi_db - histogram_spec.lo_db) /
      static_cast<double>(histogram_spec.n_bins);

  // Sequential, grid order: independent of how corners were scheduled.
  for (const CornerResult& r : results) {
    const auto& rep = r.report;
    // Solver casualties first: their report is empty, but they must never
    // drain into `uncovered` (that bucket is a mask-coverage property).
    if (r.solver_failed) {
      ++s.solver_failed;
      for (std::size_t a = 0; a < kNumAxes; ++a)
        ++s.axis_solver_failed[a][r.scenario.coord[a]];
      continue;
    }
    if (r.recovered) ++s.recovered;
    if (rep.skipped_scan_points > 0) ++s.truncated;
    s.scan_detector_passes += r.scan.detector_passes;
    s.scan_refined_points += r.scan.refined_points;
    s.scan_crossings += r.scan.crossings;
    // Memory footprints count for every corner that ran, covered or not.
    s.peak_streamed_record_bytes =
        std::max(s.peak_streamed_record_bytes, r.streamed_record_bytes);
    s.peak_monolithic_record_bytes =
        std::max(s.peak_monolithic_record_bytes, r.monolithic_record_bytes);
    if (rep.points.empty()) {
      ++s.uncovered;
      continue;
    }
    (rep.pass ? s.passed : s.failed) += 1;

    const double m = rep.worst_margin_db;
    if (m < s.worst_margin_db) {
      s.worst_margin_db = m;
      s.worst_corner = r.scenario.index;
      s.worst_label = r.scenario.label();
    }
    for (std::size_t a = 0; a < kNumAxes; ++a) {
      double& w = s.axis_worst[a][r.scenario.coord[a]];
      w = std::min(w, m);
    }

    const double clamped =
        std::clamp(m, histogram_spec.lo_db,
                   std::nextafter(histogram_spec.hi_db, histogram_spec.lo_db));
    const auto bin = static_cast<std::size_t>((clamped - histogram_spec.lo_db) / bin_width);
    ++s.histogram.counts[std::min(bin, histogram_spec.n_bins - 1)];
  }
  return s;
}

SweepRunner::SweepRunner(std::size_t jobs)
    : pool_(jobs), workspaces_(pool_.workers()) {}

SweepOutcome SweepRunner::run(const CornerGrid& grid, const CornerFn& fn,
                              const MarginHistogram& histogram_spec, std::size_t chunk,
                              const ProgressFn& progress, ShardRange shard) {
  RunOptions opt;
  opt.histogram = histogram_spec;
  opt.chunk = chunk;
  opt.progress = progress;
  opt.shard = shard;
  return run(grid, fn, opt);
}

SweepOutcome SweepRunner::run(const CornerGrid& grid, const CornerFn& fn,
                              const RunOptions& opt) {
  static const obs::Counter c_sweeps("sweep.runs");
  static const obs::Counter c_corners("sweep.corners");
  static const obs::Counter c_isolated("sweep.corners_isolated");
  static const obs::Counter c_resumed("sweep.corners_resumed");
  obs::Span span("sweep");
  c_sweeps.add();

  ShardRange shard = opt.shard;
  shard.end = std::min(shard.end, grid.size());
  if (shard.begin > shard.end)
    throw std::invalid_argument("SweepRunner::run: shard begin past end");
  const std::size_t n = shard.end - shard.begin;

  SweepOutcome out;
  out.results.resize(n);

  // Checkpoint resume: restore finished corners before opening the writer
  // (which appends to the same file). Entries outside the shard belong to
  // other shards sharing a journal directory convention; skip them.
  std::vector<char> restored(n, 0);
  std::unique_ptr<robust::JournalWriter> journal;
  if (!opt.journal_path.empty()) {
    for (const obs::Json& entry : robust::load_journal(opt.journal_path)) {
      std::size_t gidx = 0;
      CornerResult r = corner_from_journal(entry, gidx);
      if (gidx < shard.begin || gidx >= shard.end) continue;
      r.scenario = grid.at(gidx);
      r.from_checkpoint = true;
      restored[gidx - shard.begin] = 1;
      out.results[gidx - shard.begin] = std::move(r);
      c_resumed.add();
    }
    journal = std::make_unique<robust::JournalWriter>(opt.journal_path);
    if (!journal->ok())
      throw std::runtime_error("SweepRunner::run: cannot open journal " +
                               opt.journal_path);
  }

  pool_.reset_worker_stats();
  std::atomic<std::size_t> done{0};
  std::atomic<bool> aborted{false};

  pool_.parallel_for(
      n,
      [&](std::size_t index, std::size_t worker) {
        if (restored[index]) {
          const std::size_t k = done.fetch_add(1, std::memory_order_relaxed) + 1;
          if (opt.progress) opt.progress(k, n);
          return;
        }
        if (opt.stop && opt.stop->load(std::memory_order_acquire)) {
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
        obs::Span corner_span("corner");
        const auto t0 = std::chrono::steady_clock::now();
        CornerResult& slot = out.results[index];
        slot.scenario = grid.at(shard.begin + index);
        // memo_attempts/memo_recovered are NOT reset per corner: like the
        // rest of the memo they describe the transient behind memo_record,
        // so a memo hit must inherit the producing attempt's ladder
        // accounting (pure per key — a recovered transient marks every
        // corner that reuses it as recovered).
        Workspace& ws = workspaces_[worker];
        bool corner_ok = true;
        if (opt.isolate_failures) {
          try {
            slot.report = fn(slot.scenario, ws);
          } catch (const robust::SolveError& e) {
            // Isolate: record the failure with the corner identity
            // attached and keep sweeping. The workspace memo still
            // describes the last corner that SUCCEEDED, so none of the
            // memo-derived accounting below may be copied.
            corner_ok = false;
            const robust::SolveError wrapped = robust::with_corner(
                e, slot.scenario.label(), shard.begin + index);
            slot.solver_failed = true;
            slot.failure = wrapped.what();
            slot.failure_kind = robust::failure_kind_name(wrapped.info().kind);
            slot.solve_attempts = std::max(1, wrapped.info().attempts);
            c_isolated.add();
          }
        } else {
          slot.report = fn(slot.scenario, ws);
        }
        if (corner_ok) {
          // Memory and solver accounting ride the workspace (the corner
          // function only returns a report): all of these are pure
          // functions of the memo key, so memo hits report the same
          // values as the corner that ran the transient and the summary
          // stays scheduling-independent.
          slot.streamed_record_bytes = ws.memo_streamed_bytes;
          slot.monolithic_record_bytes = ws.memo_monolithic_bytes;
          slot.solve = ws.memo_solve;
          slot.transient_reused = ws.memo_hit;
          slot.solve_attempts = std::max(1, ws.memo_attempts);
          slot.recovered = ws.memo_recovered;
          // Scan accounting is per corner, not per memo: the corner
          // function overwrites ws.scan on every call.
          slot.scan = ws.scan;
        }
        slot.worker = worker;
        slot.wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        if (journal) journal->append(corner_journal_json(shard.begin + index, slot));
        const std::size_t k = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opt.progress) opt.progress(k, n);
      },
      opt.chunk);

  if (aborted.load(std::memory_order_relaxed))
    throw SweepAborted("sweep aborted: " +
                       std::to_string(done.load(std::memory_order_relaxed)) + " of " +
                       std::to_string(n) + " corners finished" +
                       (journal ? " (journaled for resume)" : ""));

  c_corners.add(n);
  out.workers = pool_.worker_stats();
  out.summary = shard.whole_grid(grid.size())
                    ? summarize(grid, out.results, opt.histogram)
                    : summarize_shard(grid, out.results, opt.histogram);
  return out;
}

namespace {

obs::Json solve_stats_exact_json(const ckt::SolveStats& st) {
  auto o = obs::Json::object();
  o.set("newton", obs::Json::integer(st.total_newton_iters));
  o.set("steps", obs::Json::integer(st.steps));
  o.set("weak", obs::Json::integer(st.weak_steps));
  o.set("restamps", obs::Json::integer(st.restamps));
  o.set("dc_newton", obs::Json::integer(st.dc_newton_iters));
  o.set("dc_gmin", obs::Json::integer(st.dc_gmin_stages));
  o.set("dc_source", obs::Json::integer(st.dc_source_steps));
  o.set("used_sparse", obs::Json::integer(st.used_sparse));
  return o;
}

ckt::SolveStats solve_stats_from_json(const obs::Json& o) {
  ckt::SolveStats st;
  st.total_newton_iters = o.at("newton").as_integer();
  st.steps = o.at("steps").as_integer();
  st.weak_steps = o.at("weak").as_integer();
  st.restamps = o.at("restamps").as_integer();
  st.dc_newton_iters = o.at("dc_newton").as_integer();
  st.dc_gmin_stages = o.at("dc_gmin").as_integer();
  st.dc_source_steps = o.at("dc_source").as_integer();
  st.used_sparse = static_cast<int>(o.at("used_sparse").as_integer());
  return st;
}

}  // namespace

obs::Json corner_journal_json(std::size_t grid_index, const CornerResult& r) {
  auto o = obs::Json::object();
  o.set("index", obs::Json::integer(static_cast<long>(grid_index)));
  o.set("solver_failed", obs::Json::boolean(r.solver_failed));
  if (!r.failure.empty()) o.set("failure", obs::Json::string(r.failure));
  if (!r.failure_kind.empty())
    o.set("failure_kind", obs::Json::string(r.failure_kind));
  o.set("attempts", obs::Json::integer(r.solve_attempts));
  o.set("recovered", obs::Json::boolean(r.recovered));
  o.set("reused", obs::Json::boolean(r.transient_reused));
  o.set("scan_passes", obs::Json::integer(static_cast<long>(r.scan.detector_passes)));
  o.set("scan_refined", obs::Json::integer(static_cast<long>(r.scan.refined_points)));
  o.set("scan_crossings", obs::Json::integer(static_cast<long>(r.scan.crossings)));
  o.set("streamed_bytes",
        obs::Json::integer(static_cast<long>(r.streamed_record_bytes)));
  o.set("monolithic_bytes",
        obs::Json::integer(static_cast<long>(r.monolithic_record_bytes)));
  o.set("solve", solve_stats_exact_json(r.solve));

  auto rep = obs::Json::object();
  rep.set("mask", obs::Json::string(r.report.mask_name));
  rep.set("what", obs::Json::string(r.report.what));
  rep.set("pass", obs::Json::boolean(r.report.pass));
  // Doubles as %.17g strings: the report must survive the round trip
  // bit-for-bit for resumed runs to be byte-identical, and Json::number
  // renders %.9g.
  rep.set("worst_margin_db",
          obs::Json::string(robust::exact_double(r.report.worst_margin_db)));
  rep.set("worst_index", obs::Json::integer(static_cast<long>(r.report.worst_index)));
  rep.set("skipped", obs::Json::integer(static_cast<long>(r.report.skipped_scan_points)));
  auto pts = obs::Json::array();
  for (const spec::MarginPoint& p : r.report.points) {
    auto row = obs::Json::array();
    row.push(obs::Json::string(robust::exact_double(p.f)));
    row.push(obs::Json::string(robust::exact_double(p.level_dbuv)));
    row.push(obs::Json::string(robust::exact_double(p.limit_dbuv)));
    row.push(obs::Json::string(robust::exact_double(p.margin_db)));
    pts.push(std::move(row));
  }
  rep.set("points", std::move(pts));
  o.set("report", std::move(rep));
  return o;
}

CornerResult corner_from_journal(const obs::Json& entry, std::size_t& grid_index) {
  const long idx = entry.at("index").as_integer();
  if (idx < 0) throw std::invalid_argument("corner_from_journal: negative index");
  grid_index = static_cast<std::size_t>(idx);

  CornerResult r;
  r.solver_failed = entry.at("solver_failed").as_bool();
  if (const obs::Json* f = entry.find("failure")) r.failure = f->as_string();
  if (const obs::Json* k = entry.find("failure_kind")) r.failure_kind = k->as_string();
  r.solve_attempts = static_cast<int>(entry.at("attempts").as_integer());
  r.recovered = entry.at("recovered").as_bool();
  r.transient_reused = entry.at("reused").as_bool();
  // Scan accounting entered the journal after the first release of the
  // format; entries without the keys (older journals) restore as zero.
  if (const obs::Json* v = entry.find("scan_passes"))
    r.scan.detector_passes = static_cast<std::size_t>(v->as_integer());
  if (const obs::Json* v = entry.find("scan_refined"))
    r.scan.refined_points = static_cast<std::size_t>(v->as_integer());
  if (const obs::Json* v = entry.find("scan_crossings"))
    r.scan.crossings = static_cast<std::size_t>(v->as_integer());
  r.streamed_record_bytes =
      static_cast<std::size_t>(entry.at("streamed_bytes").as_integer());
  r.monolithic_record_bytes =
      static_cast<std::size_t>(entry.at("monolithic_bytes").as_integer());
  r.solve = solve_stats_from_json(entry.at("solve"));

  const obs::Json& rep = entry.at("report");
  r.report.mask_name = rep.at("mask").as_string();
  r.report.what = rep.at("what").as_string();
  r.report.pass = rep.at("pass").as_bool();
  r.report.worst_margin_db = robust::parse_exact(rep.at("worst_margin_db"));
  r.report.worst_index = static_cast<std::size_t>(rep.at("worst_index").as_integer());
  r.report.skipped_scan_points =
      static_cast<std::size_t>(rep.at("skipped").as_integer());
  const obs::Json& pts = rep.at("points");
  r.report.points.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const obs::Json& row = pts[i];
    if (row.size() != 4)
      throw std::invalid_argument("corner_from_journal: malformed margin point");
    spec::MarginPoint p;
    p.f = robust::parse_exact(row[0]);
    p.level_dbuv = robust::parse_exact(row[1]);
    p.limit_dbuv = robust::parse_exact(row[2]);
    p.margin_db = robust::parse_exact(row[3]);
    r.report.points.push_back(p);
  }
  return r;
}

obs::Json corner_result_json(const CornerResult& r) {
  auto o = obs::Json::object();
  o.set("corner", obs::Json::integer(static_cast<long>(r.scenario.index)));
  o.set("label", obs::Json::string(r.scenario.label()));
  o.set("solver_failed", obs::Json::boolean(r.solver_failed));
  o.set("attempts", obs::Json::integer(r.solve_attempts));
  o.set("recovered", obs::Json::boolean(r.recovered));
  if (r.solver_failed) {
    o.set("failure_kind", obs::Json::string(r.failure_kind));
    o.set("failure", obs::Json::string(r.failure));
    return o;
  }
  o.set("pass", obs::Json::boolean(r.report.pass));
  o.set("points", obs::Json::integer(static_cast<long>(r.report.points.size())));
  if (!r.report.points.empty())
    o.set("worst_margin_db", obs::Json::number(r.report.worst_margin_db));
  o.set("skipped", obs::Json::integer(static_cast<long>(r.report.skipped_scan_points)));
  o.set("scan_passes", obs::Json::integer(static_cast<long>(r.scan.detector_passes)));
  o.set("scan_refined", obs::Json::integer(static_cast<long>(r.scan.refined_points)));
  o.set("streamed_bytes",
        obs::Json::integer(static_cast<long>(r.streamed_record_bytes)));
  return o;
}

CornerFn make_emission_corner_fn(const EmissionSweepConfig& cfg) {
  validate_emission_config(cfg, "make_emission_corner_fn");

  return [cfg](const Scenario& sc, Workspace& ws) -> spec::ComplianceReport {
    // The transient depends only on (pattern, line length, load); the
    // supply/detector/RBW axes post-process its record. Memoize the
    // steady-state record per worker so a chunk of post-processing
    // corners pays for one transient (a hit is bit-identical to
    // recomputing — the record is a pure function of the key).
    std::string memo_key = emission_memo_key(sc);
    static const obs::Counter c_hits("sweep.memo_hits");
    static const obs::Counter c_misses("sweep.memo_misses");

    ws.memo_hit = ws.memo_key == memo_key;
    (ws.memo_hit ? c_hits : c_misses).add();
    if (!ws.memo_hit) {
      const double period = cfg.bit_time * static_cast<double>(sc.bits.size());
      // The transient runs under the retry/escalation ladder: a failing
      // solve is retried with cumulatively stronger numerics, and the
      // ladder schedule is a pure function of the corner, so retried
      // sweeps stay deterministic for any worker count. The body rebuilds
      // everything per attempt — a failed attempt leaves nothing behind.
      const robust::RetryOutcome ro = robust::run_with_escalation(
          emission_retry_policy(cfg), emission_base_options(cfg, sc),
          [&](const ckt::TransientOptions& opt) {
            // Per-corner circuit: everything mutable lives here; the
            // macromodel is shared const across workers.
            auto tr = build_emission_transient(cfg, sc);
            tr->opt = opt;
            // The ladder may have halved dt; the steady-state window is a
            // frame count, so recompute it against the attempt's step.
            tr->per_period = static_cast<std::size_t>(std::lround(period / opt.dt));

            // Streamed transient: probe only the measured land and record
            // only the steady-state window (drop the first pattern period
            // as startup transient, keep whole periods so harmonics stay
            // coherently sampled). The engine never materializes the full
            // all-unknowns record; the chunk staging buffer lives in
            // ws.newton and is reused across every corner this worker runs.
            const int probes[] = {tr->b1};
            sig::RecordingSink rec(
                tr->per_period,
                tr->per_period * static_cast<std::size_t>(cfg.periods - 1));
            ws.memo_solve = ckt::run_transient_streamed(tr->c, tr->opt, ws.newton,
                                                        probes, rec, tr->chunk_frames);
            // Single-channel recording: the flat buffer IS the steady
            // record — move it out instead of copying through waveform().
            ws.memo_record = sig::Waveform(
                tr->opt.t_start + tr->opt.dt * static_cast<double>(tr->per_period),
                tr->opt.dt, std::move(rec).take_data());

            const auto n_unknowns = static_cast<std::size_t>(tr->c.finalize());
            const auto n_frames =
                static_cast<std::size_t>(std::llround(tr->opt.t_stop / tr->opt.dt)) + 1;
            ws.memo_streamed_bytes =
                (tr->chunk_frames + ws.memo_record.size()) * sizeof(double);
            ws.memo_monolithic_bytes = n_frames * n_unknowns * sizeof(double);
          });
      ws.memo_attempts = ro.attempts;
      ws.memo_recovered = ro.recovered;
      ws.memo_key = std::move(memo_key);
    }

    return post_process_corner(cfg, sc, ws.memo_record, ws.scanner, ws.scan);
  };
}

namespace {

/// Lane-batched evaluation of `corner_list` (grid indices, ascending):
/// the grouping / lockstep-batching / demotion engine shared by
/// run_emission_sweep_lanes (whole grid) and refine_emission_sweep_lanes
/// (only the corners an axis subdivision added). Results land in the
/// matching results[index] slots; other slots are untouched.
void run_lanes_over(const EmissionSweepConfig& cfg, const CornerGrid& grid,
                    std::span<const std::size_t> corner_list, std::size_t max_lanes,
                    std::vector<CornerResult>& results, LaneSweepInfo& acc) {
  // One transient group per distinct memo key: the same unit of work the
  // scalar runner's record memo deduplicates. Keys repeat only in
  // contiguous runs (post-processing axes vary fastest in grid order).
  struct Group {
    std::string key;
    std::size_t first = 0;               ///< grid index defining the transient
    std::vector<std::size_t> corners;    ///< grid indices sharing the record
  };
  std::vector<Group> groups;
  for (const std::size_t i : corner_list) {
    std::string key = emission_memo_key(grid.at(i));
    if (groups.empty() || groups.back().key != key)
      groups.push_back(Group{std::move(key), i, {}});
    groups.back().corners.push_back(i);
  }

  spec::EmiScanner scanner;
  ckt::LaneWorkspace lw;

  std::size_t g0 = 0;
  while (g0 < groups.size()) {
    // Batch consecutive groups advancing the same topology through the
    // same step count: equal line length (fixes the section count and the
    // unknown count) and equal pattern length (fixes t_stop).
    const Scenario sc0 = grid.at(groups[g0].first);
    std::size_t g1 = g0 + 1;
    while (g1 < groups.size() && g1 - g0 < max_lanes) {
      const Scenario sc = grid.at(groups[g1].first);
      if (sc.line_length != sc0.line_length || sc.bits.size() != sc0.bits.size()) break;
      ++g1;
    }
    const std::size_t L = g1 - g0;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::unique_ptr<CornerTransient>> built;
    std::vector<ckt::Circuit*> lanes;
    std::vector<sig::RecordingSink> recs;
    std::vector<sig::SampleSink*> sinks;
    built.reserve(L);
    recs.reserve(L);
    for (std::size_t l = 0; l < L; ++l) {
      built.push_back(build_emission_transient(cfg, grid.at(groups[g0 + l].first)));
      recs.emplace_back(built[l]->per_period,
                        built[l]->per_period * static_cast<std::size_t>(cfg.periods - 1));
    }
    for (std::size_t l = 0; l < L; ++l) {
      lanes.push_back(&built[l]->c);
      sinks.push_back(&recs[l]);
    }

    std::vector<std::string> keys(L);
    for (std::size_t l = 0; l < L; ++l) keys[l] = groups[g0 + l].key;

    const int probes[] = {built[0]->b1};
    const auto stats = ckt::run_transient_lanes(lanes, built[0]->opt, lw, probes, sinks,
                                                built[0]->chunk_frames, keys);
    acc.batches += 1;
    acc.transients += L;
    acc.batched_walk_entries += stats.batched_walk_entries;
    acc.scalar_walk_entries += stats.scalar_walk_entries;

    std::size_t batch_corners = 0;
    for (std::size_t l = 0; l < L; ++l) batch_corners += groups[g0 + l].corners.size();

    for (std::size_t l = 0; l < L; ++l) {
      const CornerTransient& tr = *built[l];
      const Scenario lane_sc = grid.at(groups[g0 + l].first);
      const auto n_unknowns = static_cast<std::size_t>(built[l]->c.finalize());

      sig::Waveform steady;
      ckt::SolveStats lane_solve = stats.lanes[l];
      std::size_t streamed_bytes = 0;
      std::size_t monolithic_bytes = 0;
      int lane_attempts = 1;
      bool lane_recovered = false;
      std::unique_ptr<robust::SolveError> lane_error;

      if (!stats.failures[l].failed) {
        steady = sig::Waveform(
            tr.opt.t_start + tr.opt.dt * static_cast<double>(tr.per_period), tr.opt.dt,
            std::move(recs[l]).take_data());
        const auto n_frames =
            static_cast<std::size_t>(std::llround(tr.opt.t_stop / tr.opt.dt)) + 1;
        streamed_bytes = (tr.chunk_frames + steady.size()) * sizeof(double);
        monolithic_bytes = n_frames * n_unknowns * sizeof(double);
      } else {
        // Lane demotion: the batched transient isolated this lane (its
        // frozen record is unusable) while the survivors continued. Evict
        // it to a scalar retry under the escalation ladder — the scalar
        // base attempt reruns the identical arithmetic, so a lane that
        // would also fail scalar walks the same ladder the scalar runner
        // would have walked.
        ++acc.demoted;
        const double period = cfg.bit_time * static_cast<double>(lane_sc.bits.size());
        try {
          const robust::RetryOutcome ro = robust::run_with_escalation(
              emission_retry_policy(cfg), emission_base_options(cfg, lane_sc),
              [&](const ckt::TransientOptions& opt) {
                auto rtr = build_emission_transient(cfg, lane_sc);
                rtr->opt = opt;
                rtr->per_period =
                    static_cast<std::size_t>(std::lround(period / opt.dt));
                const int rprobes[] = {rtr->b1};
                sig::RecordingSink rec(
                    rtr->per_period,
                    rtr->per_period * static_cast<std::size_t>(cfg.periods - 1));
                lane_solve = ckt::run_transient_streamed(rtr->c, rtr->opt, lw.scalar,
                                                         rprobes, rec, rtr->chunk_frames);
                steady = sig::Waveform(
                    rtr->opt.t_start +
                        rtr->opt.dt * static_cast<double>(rtr->per_period),
                    rtr->opt.dt, std::move(rec).take_data());
                const auto n_frames = static_cast<std::size_t>(
                                          std::llround(rtr->opt.t_stop / rtr->opt.dt)) +
                                      1;
                streamed_bytes = (rtr->chunk_frames + steady.size()) * sizeof(double);
                monolithic_bytes = n_frames * n_unknowns * sizeof(double);
              });
          lane_attempts = ro.attempts;
          lane_recovered = ro.recovered;
        } catch (const robust::SolveError& e) {
          lane_error = std::make_unique<robust::SolveError>(e);
        }
      }

      for (std::size_t idx : groups[g0 + l].corners) {
        obs::Span corner_span("corner");
        CornerResult& slot = results[idx];
        slot.scenario = grid.at(idx);
        if (lane_error) {
          const robust::SolveError wrapped =
              robust::with_corner(*lane_error, slot.scenario.label(), idx);
          slot.solver_failed = true;
          slot.failure = wrapped.what();
          slot.failure_kind = robust::failure_kind_name(wrapped.info().kind);
          slot.solve_attempts = std::max(1, wrapped.info().attempts);
          slot.transient_reused = idx != groups[g0 + l].first;
          continue;
        }
        slot.report = post_process_corner(cfg, slot.scenario, steady, scanner, slot.scan);
        slot.streamed_record_bytes = streamed_bytes;
        slot.monolithic_record_bytes = monolithic_bytes;
        // Lane semantics match the scalar runner: every corner of a group
        // carries the producing lane's solver stats, and only the group's
        // defining corner "ran" its transient.
        slot.solve = lane_solve;
        slot.solve_attempts = lane_attempts;
        slot.recovered = lane_recovered;
        slot.transient_reused = idx != groups[g0 + l].first;
      }
    }
    const double batch_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    for (std::size_t l = 0; l < L; ++l)
      for (std::size_t idx : groups[g0 + l].corners)
        results[idx].wall_s = batch_wall / static_cast<double>(batch_corners);

    g0 = g1;
  }
}

void validate_lane_config(const EmissionSweepConfig& cfg, std::size_t max_lanes,
                          const char* who) {
  validate_emission_config(cfg, who);
  if (cfg.solver == ckt::SolverKind::kDense)
    throw std::invalid_argument(std::string(who) + ": lane batching is sparse-only");
  if (max_lanes == 0)
    throw std::invalid_argument(std::string(who) + ": max_lanes must be >= 1");
}

}  // namespace

SweepOutcome run_emission_sweep_lanes(const EmissionSweepConfig& cfg,
                                      const CornerGrid& grid, std::size_t max_lanes,
                                      const MarginHistogram& histogram_spec,
                                      LaneSweepInfo* info) {
  validate_lane_config(cfg, max_lanes, "run_emission_sweep_lanes");

  static const obs::Counter c_sweeps("sweep.runs");
  static const obs::Counter c_corners("sweep.corners");
  obs::Span span("sweep");
  c_sweeps.add();
  c_corners.add(grid.size());

  SweepOutcome out;
  out.results.resize(grid.size());
  std::vector<std::size_t> all(grid.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  LaneSweepInfo acc;
  run_lanes_over(cfg, grid, all, max_lanes, out.results, acc);

  out.summary = summarize(grid, out.results, histogram_spec);
  if (info) *info = acc;
  return out;
}

namespace {

/// The axes refinement can subdivide: positive numeric quantities whose
/// values live in a CornerAxes vector of doubles. Pattern seed and
/// detector are categorical — there is nothing "between" two seeds.
const std::vector<double>* numeric_axis_values(const CornerAxes& axes, AxisId a) {
  switch (a) {
    case AxisId::kLineLength: return &axes.line_length;
    case AxisId::kLoadC: return &axes.load_c;
    case AxisId::kRbw: return &axes.rbw;
    case AxisId::kVddScale: return &axes.vdd_scale;
    default: return nullptr;
  }
}

std::vector<double>* numeric_axis_values(CornerAxes& axes, AxisId a) {
  return const_cast<std::vector<double>*>(
      numeric_axis_values(static_cast<const CornerAxes&>(axes), a));
}

/// new-coordinate -> old-coordinate map of one refined axis; SIZE_MAX
/// marks inserted values. Original values survive apply_refinement
/// verbatim, so exact double equality identifies them.
std::vector<std::size_t> old_coord_map(const std::vector<double>& old_vals,
                                       const std::vector<double>& new_vals) {
  std::vector<std::size_t> map(new_vals.size(), SIZE_MAX);
  std::size_t o = 0;
  for (std::size_t k = 0; k < new_vals.size(); ++k)
    if (o < old_vals.size() && new_vals[k] == old_vals[o]) {
      map[k] = o;
      ++o;
    }
  if (o != old_vals.size())
    throw std::invalid_argument("refine: refined axis does not extend the prior axis");
  return map;
}

/// Grid index from per-axis coordinates (inverse of CornerGrid::at's
/// mixed-radix decode: axis 0 is the slowest-varying digit).
std::size_t encode_index(const CornerGrid& grid, const std::size_t coord[kNumAxes]) {
  std::size_t idx = 0;
  for (std::size_t a = 0; a < kNumAxes; ++a)
    idx = idx * grid.axis_size(static_cast<AxisId>(a)) + coord[a];
  return idx;
}

/// Shared carry-over stage of the two refinement drivers: compute the
/// plan, build the refined grid, copy every prior corner's result into
/// its slot on the refined grid (result bits untouched; only the decoded
/// Scenario is re-derived) and return the indices still needing
/// evaluation, ascending.
std::vector<std::size_t> carry_over_refinement(const CornerGrid& grid,
                                               const SweepOutcome& prior,
                                               RefineOutcome& out) {
  if (prior.results.size() != grid.size())
    throw std::invalid_argument("refine: prior outcome must cover the whole grid");

  out.plan = plan_axis_refinement(grid, prior.summary);
  out.grid = CornerGrid(apply_refinement(grid.axes(), out.plan));
  out.outcome = SweepOutcome{};
  out.outcome.results.resize(out.grid.size());
  out.reused = 0;
  out.evaluated = 0;

  std::vector<std::vector<std::size_t>> maps(kNumAxes);
  for (std::size_t a = 0; a < kNumAxes; ++a) {
    const auto axis = static_cast<AxisId>(a);
    if (const std::vector<double>* nv = numeric_axis_values(out.grid.axes(), axis)) {
      maps[a] = old_coord_map(*numeric_axis_values(grid.axes(), axis), *nv);
    } else {
      maps[a].resize(out.grid.axis_size(axis));  // categorical: identity
      for (std::size_t k = 0; k < maps[a].size(); ++k) maps[a][k] = k;
    }
  }

  std::vector<std::size_t> fresh;
  for (std::size_t i = 0; i < out.grid.size(); ++i) {
    const Scenario sc = out.grid.at(i);
    std::size_t old_coord[kNumAxes];
    bool carried = true;
    for (std::size_t a = 0; a < kNumAxes && carried; ++a) {
      old_coord[a] = maps[a][sc.coord[a]];
      carried = old_coord[a] != SIZE_MAX;
    }
    if (carried) {
      CornerResult& slot = out.outcome.results[i];
      slot = prior.results[encode_index(grid, old_coord)];
      slot.scenario = sc;
      ++out.reused;
    } else {
      fresh.push_back(i);
    }
  }
  out.evaluated = fresh.size();
  return fresh;
}

}  // namespace

std::vector<AxisInsertion> plan_axis_refinement(const CornerGrid& grid,
                                                const SweepSummary& summary) {
  if (summary.axis_worst.size() != kNumAxes)
    throw std::invalid_argument("plan_axis_refinement: summary has no axis table");

  std::vector<AxisInsertion> plan;
  for (std::size_t a = 0; a < kNumAxes; ++a) {
    const auto axis = static_cast<AxisId>(a);
    const std::vector<double>* vals = numeric_axis_values(grid.axes(), axis);
    if (!vals || vals->size() < 2) continue;
    const std::vector<double>& worst = summary.axis_worst[a];
    if (worst.size() != vals->size())
      throw std::invalid_argument("plan_axis_refinement: summary/grid shape mismatch");
    for (std::size_t k = 0; k + 1 < vals->size(); ++k) {
      const double m0 = worst[k], m1 = worst[k + 1];
      // Values no covered corner hit (+inf sentinel) never form a
      // boundary: there is no verdict to flip.
      if (!std::isfinite(m0) || !std::isfinite(m1)) continue;
      if ((m0 >= 0.0) == (m1 >= 0.0)) continue;
      const double v0 = (*vals)[k], v1 = (*vals)[k + 1];
      const double mid =
          v0 > 0.0 && v1 > 0.0 ? std::sqrt(v0 * v1) : 0.5 * (v0 + v1);
      if (mid == v0 || mid == v1) continue;  // axis already at double resolution
      plan.push_back(AxisInsertion{axis, k, mid});
    }
  }
  return plan;
}

CornerAxes apply_refinement(const CornerAxes& axes,
                            std::span<const AxisInsertion> plan) {
  CornerAxes out = axes;
  for (std::size_t a = 0; a < kNumAxes; ++a) {
    const auto axis = static_cast<AxisId>(a);
    std::vector<const AxisInsertion*> ins;
    for (const AxisInsertion& x : plan)
      if (x.axis == axis) ins.push_back(&x);
    if (ins.empty()) continue;
    std::vector<double>* vals = numeric_axis_values(out, axis);
    if (!vals)
      throw std::invalid_argument("apply_refinement: categorical axis in plan");
    // Insert from the highest index down: plan indices refer to the
    // original axis, so earlier insertions must not shift later ones.
    std::sort(ins.begin(), ins.end(),
              [](const AxisInsertion* p, const AxisInsertion* q) {
                return p->after > q->after;
              });
    for (const AxisInsertion* x : ins) {
      if (x->after + 1 > vals->size())
        throw std::invalid_argument("apply_refinement: insertion outside axis");
      vals->insert(vals->begin() + static_cast<std::ptrdiff_t>(x->after) + 1,
                   x->value);
    }
  }
  return out;
}

RefineOutcome SweepRunner::refine(const CornerGrid& grid, const SweepOutcome& prior,
                                  const CornerFn& fn, const RunOptions& opt) {
  static const obs::Counter c_refines("sweep.refine.runs");
  static const obs::Counter c_reused("sweep.refine.corners_reused");
  static const obs::Counter c_evaluated("sweep.refine.corners_evaluated");
  obs::Span span("sweep_refine");

  RefineOutcome out;
  const std::vector<std::size_t> fresh = carry_over_refinement(grid, prior, out);
  c_refines.add();
  c_reused.add(out.reused);
  c_evaluated.add(out.evaluated);

  pool_.reset_worker_stats();
  pool_.parallel_for(
      fresh.size(),
      [&](std::size_t fi, std::size_t worker) {
        // Same evaluation core as run(), minus journaling/abort: fresh
        // corners are claimed in grid order, so chunks of them sharing a
        // transient still hit the worker memo.
        obs::Span corner_span("corner");
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t index = fresh[fi];
        CornerResult& slot = out.outcome.results[index];
        slot.scenario = out.grid.at(index);
        Workspace& ws = workspaces_[worker];
        bool corner_ok = true;
        if (opt.isolate_failures) {
          try {
            slot.report = fn(slot.scenario, ws);
          } catch (const robust::SolveError& e) {
            corner_ok = false;
            const robust::SolveError wrapped =
                robust::with_corner(e, slot.scenario.label(), index);
            slot.solver_failed = true;
            slot.failure = wrapped.what();
            slot.failure_kind = robust::failure_kind_name(wrapped.info().kind);
            slot.solve_attempts = std::max(1, wrapped.info().attempts);
          }
        } else {
          slot.report = fn(slot.scenario, ws);
        }
        if (corner_ok) {
          slot.streamed_record_bytes = ws.memo_streamed_bytes;
          slot.monolithic_record_bytes = ws.memo_monolithic_bytes;
          slot.solve = ws.memo_solve;
          slot.transient_reused = ws.memo_hit;
          slot.solve_attempts = std::max(1, ws.memo_attempts);
          slot.recovered = ws.memo_recovered;
          slot.scan = ws.scan;
        }
        slot.worker = worker;
        slot.wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
      },
      opt.chunk);

  out.outcome.workers = pool_.worker_stats();
  out.outcome.summary = summarize(out.grid, out.outcome.results, opt.histogram);
  return out;
}

RefineOutcome refine_emission_sweep_lanes(const EmissionSweepConfig& cfg,
                                          const CornerGrid& grid,
                                          const SweepOutcome& prior,
                                          std::size_t max_lanes,
                                          const MarginHistogram& histogram_spec,
                                          LaneSweepInfo* info) {
  validate_lane_config(cfg, max_lanes, "refine_emission_sweep_lanes");
  obs::Span span("sweep_refine");

  RefineOutcome out;
  const std::vector<std::size_t> fresh = carry_over_refinement(grid, prior, out);

  LaneSweepInfo acc;
  run_lanes_over(cfg, out.grid, fresh, max_lanes, out.outcome.results, acc);

  out.outcome.summary = summarize(out.grid, out.outcome.results, histogram_spec);
  if (info) *info = acc;
  return out;
}

std::size_t emission_chunk_hint(const CornerGrid& grid) {
  return grid.axis_size(AxisId::kRbw) * grid.axis_size(AxisId::kVddScale) *
         grid.axis_size(AxisId::kDetector);
}

// Margins can be +inf ("no covered corner hit this value"), which the JSON
// emitter would render as null — encode that case as a string instead.
obs::Json margin_json(double margin_db) {
  return std::isfinite(margin_db) ? obs::Json::number(margin_db)
                                  : obs::Json::string("uncovered");
}

obs::Json summary_json(const CornerGrid& grid, const SweepSummary& s) {
  auto o = obs::Json::object();
  o.set("corners", obs::Json::integer(static_cast<long>(s.corners)));
  o.set("passed", obs::Json::integer(static_cast<long>(s.passed)));
  o.set("failed", obs::Json::integer(static_cast<long>(s.failed)));
  o.set("uncovered", obs::Json::integer(static_cast<long>(s.uncovered)));
  o.set("truncated", obs::Json::integer(static_cast<long>(s.truncated)));
  o.set("solver_failed", obs::Json::integer(static_cast<long>(s.solver_failed)));
  o.set("recovered", obs::Json::integer(static_cast<long>(s.recovered)));
  o.set("scan_detector_passes",
        obs::Json::integer(static_cast<long>(s.scan_detector_passes)));
  o.set("scan_refined_points",
        obs::Json::integer(static_cast<long>(s.scan_refined_points)));
  o.set("scan_crossings", obs::Json::integer(static_cast<long>(s.scan_crossings)));
  o.set("worst_margin_db", margin_json(s.worst_margin_db));
  if (s.passed + s.failed > 0) {
    o.set("worst_corner", obs::Json::integer(static_cast<long>(s.worst_corner)));
    o.set("worst_label", obs::Json::string(s.worst_label));
  }

  auto axes = obs::Json::array();
  for (std::size_t a = 0; a < kNumAxes; ++a) {
    const auto axis = static_cast<AxisId>(a);
    if (grid.axis_size(axis) < 2) continue;  // singleton axes say nothing
    auto row = obs::Json::object();
    row.set("axis", obs::Json::string(axis_name(axis)));
    auto vals = obs::Json::array();
    for (std::size_t k = 0; k < grid.axis_size(axis); ++k) {
      auto v = obs::Json::object();
      v.set("value", obs::Json::string(grid.axis_value_label(axis, k)));
      v.set("worst_margin_db", margin_json(s.axis_worst[a][k]));
      const std::size_t failed_here =
          a < s.axis_solver_failed.size() && k < s.axis_solver_failed[a].size()
              ? s.axis_solver_failed[a][k]
              : 0;
      v.set("solver_failed", obs::Json::integer(static_cast<long>(failed_here)));
      vals.push(std::move(v));
    }
    row.set("worst_by_value", std::move(vals));
    axes.push(std::move(row));
  }
  o.set("per_axis_worst", std::move(axes));

  o.set("peak_streamed_record_bytes",
        obs::Json::integer(static_cast<long>(s.peak_streamed_record_bytes)));
  o.set("peak_monolithic_record_bytes",
        obs::Json::integer(static_cast<long>(s.peak_monolithic_record_bytes)));

  auto hist = obs::Json::object();
  hist.set("lo_db", obs::Json::number(s.histogram.lo_db));
  hist.set("hi_db", obs::Json::number(s.histogram.hi_db));
  auto counts = obs::Json::array();
  for (std::size_t c : s.histogram.counts)
    counts.push(obs::Json::integer(static_cast<long>(c)));
  hist.set("counts", std::move(counts));
  o.set("margin_histogram_db", std::move(hist));
  return o;
}

obs::Json worker_stats_json(std::span<const WorkerStats> workers) {
  auto rows = obs::Json::array();
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const WorkerStats& ws = workers[w];
    auto row = obs::Json::object();
    row.set("worker", obs::Json::integer(static_cast<long>(w)));
    row.set("busy_s", obs::Json::number(static_cast<double>(ws.busy_ns) * 1e-9));
    row.set("idle_s", obs::Json::number(static_cast<double>(ws.idle_ns) * 1e-9));
    row.set("items", obs::Json::integer(static_cast<long>(ws.items)));
    row.set("epochs", obs::Json::integer(static_cast<long>(ws.epochs)));
    row.set("suppressed", obs::Json::integer(static_cast<long>(ws.suppressed)));
    const std::uint64_t total = ws.busy_ns + ws.idle_ns;
    row.set("busy_fraction",
            obs::Json::number(total > 0 ? static_cast<double>(ws.busy_ns) /
                                              static_cast<double>(total)
                                        : 0.0));
    rows.push(std::move(row));
  }
  return rows;
}

}  // namespace emc::sweep
