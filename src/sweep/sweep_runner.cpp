#include "sweep/sweep_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "circuit/devices_linear.hpp"
#include "circuit/netlist.hpp"
#include "core/driver_device.hpp"

namespace emc::sweep {

SweepSummary summarize(const CornerGrid& grid, std::span<const CornerResult> results,
                       const MarginHistogram& histogram_spec) {
  if (results.size() != grid.size())
    throw std::invalid_argument("summarize: results/grid size mismatch");
  if (histogram_spec.n_bins == 0 || !(histogram_spec.hi_db > histogram_spec.lo_db))
    throw std::invalid_argument("summarize: bad histogram spec");

  SweepSummary s;
  s.corners = results.size();
  s.histogram = histogram_spec;
  s.histogram.counts.assign(histogram_spec.n_bins, 0);
  // "Nothing scored" sentinels; overwritten by the first covered corner.
  s.worst_margin_db = std::numeric_limits<double>::infinity();
  s.worst_corner = SIZE_MAX;

  s.axis_worst.resize(kNumAxes);
  for (std::size_t a = 0; a < kNumAxes; ++a)
    s.axis_worst[a].assign(grid.axis_size(static_cast<AxisId>(a)),
                           std::numeric_limits<double>::infinity());

  const double bin_width =
      (histogram_spec.hi_db - histogram_spec.lo_db) /
      static_cast<double>(histogram_spec.n_bins);

  // Sequential, grid order: independent of how corners were scheduled.
  for (const CornerResult& r : results) {
    const auto& rep = r.report;
    if (rep.skipped_scan_points > 0) ++s.truncated;
    // Memory footprints count for every corner that ran, covered or not.
    s.peak_streamed_record_bytes =
        std::max(s.peak_streamed_record_bytes, r.streamed_record_bytes);
    s.peak_monolithic_record_bytes =
        std::max(s.peak_monolithic_record_bytes, r.monolithic_record_bytes);
    if (rep.points.empty()) {
      ++s.uncovered;
      continue;
    }
    (rep.pass ? s.passed : s.failed) += 1;

    const double m = rep.worst_margin_db;
    if (m < s.worst_margin_db) {
      s.worst_margin_db = m;
      s.worst_corner = r.scenario.index;
      s.worst_label = r.scenario.label();
    }
    for (std::size_t a = 0; a < kNumAxes; ++a) {
      double& w = s.axis_worst[a][r.scenario.coord[a]];
      w = std::min(w, m);
    }

    const double clamped =
        std::clamp(m, histogram_spec.lo_db,
                   std::nextafter(histogram_spec.hi_db, histogram_spec.lo_db));
    const auto bin = static_cast<std::size_t>((clamped - histogram_spec.lo_db) / bin_width);
    ++s.histogram.counts[std::min(bin, histogram_spec.n_bins - 1)];
  }
  return s;
}

SweepRunner::SweepRunner(std::size_t jobs)
    : pool_(jobs), workspaces_(pool_.workers()) {}

SweepOutcome SweepRunner::run(const CornerGrid& grid, const CornerFn& fn,
                              const MarginHistogram& histogram_spec, std::size_t chunk) {
  SweepOutcome out;
  out.results.resize(grid.size());

  pool_.parallel_for(
      grid.size(),
      [&](std::size_t index, std::size_t worker) {
        const auto t0 = std::chrono::steady_clock::now();
        CornerResult& slot = out.results[index];
        slot.scenario = grid.at(index);
        Workspace& ws = workspaces_[worker];
        slot.report = fn(slot.scenario, ws);
        // Memory accounting rides the workspace (the corner function only
        // returns a report): both values are pure functions of the memo
        // key, so memo hits report the same bytes as the corner that ran
        // the transient and the summary stays scheduling-independent.
        slot.streamed_record_bytes = ws.memo_streamed_bytes;
        slot.monolithic_record_bytes = ws.memo_monolithic_bytes;
        slot.wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      },
      chunk);

  out.summary = summarize(grid, out.results, histogram_spec);
  return out;
}

CornerFn make_emission_corner_fn(const EmissionSweepConfig& cfg) {
  if (!cfg.model) throw std::invalid_argument("make_emission_corner_fn: null model");
  if (cfg.periods < 2)
    throw std::invalid_argument(
        "make_emission_corner_fn: need >= 2 periods (the first is discarded)");
  if (cfg.line.l.rows() != 2 || cfg.line.c.rows() != 2)
    throw std::invalid_argument("make_emission_corner_fn: line must have 2 conductors");

  return [cfg](const Scenario& sc, Workspace& ws) -> spec::ComplianceReport {
    // The transient depends only on (pattern, line length, load); the
    // supply/detector/RBW axes post-process its record. Memoize the
    // steady-state record per worker so a chunk of post-processing
    // corners pays for one transient (a hit is bit-identical to
    // recomputing — the record is a pure function of the key).
    char key[96];
    std::snprintf(key, sizeof key, "|%.17g|%.17g", sc.line_length, sc.load_c);
    std::string memo_key = sc.bits + key;

    if (ws.memo_key != memo_key) {
      // Per-corner circuit: everything mutable lives here; the macromodel
      // is shared const across workers.
      ckt::Circuit c;
      const int a1 = c.node();
      const int a2 = c.node();
      const int b1 = c.node();
      const int b2 = c.node();

      ckt::CoupledLineParams line = cfg.line;
      line.length = sc.line_length;
      add_coupled_lossy_line(c, {a1, a2}, {b1, b2}, line, cfg.dt, cfg.sections);
      c.add<ckt::Capacitor>(b1, c.ground(), sc.load_c);
      c.add<ckt::Capacitor>(b2, c.ground(), sc.load_c);

      std::string active_bits;
      for (int p = 0; p < cfg.periods; ++p) active_bits += sc.bits;
      const std::string quiet_bits(active_bits.size(), '0');
      c.add<core::DriverDevice>(a1, *cfg.model, active_bits, cfg.bit_time);
      c.add<core::DriverDevice>(a2, *cfg.model, quiet_bits, cfg.bit_time);

      const double period = cfg.bit_time * static_cast<double>(sc.bits.size());
      ckt::TransientOptions opt;
      opt.dt = cfg.dt;
      opt.t_stop = period * static_cast<double>(cfg.periods);

      // Streamed transient: probe only the measured land and record only
      // the steady-state window (drop the first pattern period as startup
      // transient, keep whole periods so harmonics stay coherently
      // sampled). The engine never materializes the full all-unknowns
      // record; the chunk staging buffer lives in ws.newton and is reused
      // across every corner this worker runs.
      const auto per_period = static_cast<std::size_t>(std::lround(period / cfg.dt));
      const int probes[] = {b1};
      const std::size_t chunk_frames = std::clamp<std::size_t>(
          cfg.stream_budget_bytes / (sizeof(double) * std::size(probes)), 64, 65536);
      sig::RecordingSink rec(per_period,
                             per_period * static_cast<std::size_t>(cfg.periods - 1));
      ckt::run_transient_streamed(c, opt, ws.newton, probes, rec, chunk_frames);
      // Single-channel recording: the flat buffer IS the steady record —
      // move it out instead of copying through waveform().
      ws.memo_record =
          sig::Waveform(opt.t_start + opt.dt * static_cast<double>(per_period), opt.dt,
                        std::move(rec).take_data());

      const auto n_unknowns = static_cast<std::size_t>(c.finalize());
      const auto n_frames =
          static_cast<std::size_t>(std::llround(opt.t_stop / opt.dt)) + 1;
      ws.memo_streamed_bytes =
          (chunk_frames + ws.memo_record.size()) * sizeof(double);
      ws.memo_monolithic_bytes = n_frames * n_unknowns * sizeof(double);
      ws.memo_key = std::move(memo_key);
    }

    // First-order supply corner: emission levels scale ~linearly with VDD.
    sig::Waveform record = ws.memo_record;
    record *= sc.vdd_scale;

    spec::ReceiverSettings rx = cfg.rx;
    rx.rbw = sc.rbw;
    const auto scan = ws.scanner.scan(record, rx);
    const std::vector<double>* trace = nullptr;
    switch (sc.detector) {
      case Detector::kPeak: trace = &scan.peak_dbuv; break;
      case Detector::kQuasiPeak: trace = &scan.quasi_peak_dbuv; break;
      case Detector::kAverage: trace = &scan.average_dbuv; break;
    }
    // A scan truncated at the record's Nyquist rate must not silently
    // pass the mask — carry the dropped-point count into the report.
    return spec::check_compliance(scan.freq, *trace, cfg.mask, sc.label(),
                                  scan.skipped_points);
  };
}

std::size_t emission_chunk_hint(const CornerGrid& grid) {
  return grid.axis_size(AxisId::kRbw) * grid.axis_size(AxisId::kVddScale) *
         grid.axis_size(AxisId::kDetector);
}

}  // namespace emc::sweep
