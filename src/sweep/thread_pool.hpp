// Work-sharing thread pool for the corner-sweep engine.
//
// The pool runs parallel index loops: parallel_for(n, fn) executes
// fn(index, worker) for every index in [0, n), partitioning the range
// dynamically — each worker claims the next unclaimed index from a shared
// atomic cursor, so a slow corner (a hard Newton solve, a long record)
// never leaves the other workers idle behind a static split. This is the
// degenerate chunk-size-1 form of chunked self-scheduling; corners cost
// milliseconds, so cursor contention is noise.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emc::sweep {

/// Per-worker utilization accounting, accumulated across parallel_for
/// epochs. busy_ns counts time inside fn invocations (measured per
/// claimed chunk); idle_ns is the remainder of each epoch's wall time the
/// worker did not spend busy — waiting to wake, waiting on the cursor, or
/// finished early behind a slow tail. busy_ns + idle_ns sums to (epochs x
/// epoch wall time) per worker up to clock granularity, which is what the
/// accounting test gates on.
struct WorkerStats {
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t items = 0;   ///< loop indices this worker executed
  std::uint64_t epochs = 0;  ///< parallel_for calls observed

  /// Worker exceptions swallowed by this worker's drain because another
  /// exception was already captured for the epoch (only the first is
  /// rethrown). Nonzero means failures beyond the one reported.
  std::uint64_t suppressed = 0;
};

/// Fixed-size pool of persistent workers. The calling thread participates
/// as worker 0, so ThreadPool(1) spawns no threads at all and runs every
/// loop inline — the serial reference that parallel runs must match
/// bit-for-bit. Worker ids are stable across calls and index per-worker
/// scratch (see sweep::Workspace).
class ThreadPool {
 public:
  /// `workers` including the calling thread; clamped to >= 1.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return n_workers_; }

  /// Run fn(index, worker) for every index in [0, n); blocks until all
  /// indices completed. Workers claim aligned blocks of `chunk`
  /// consecutive indices (chunk 1 = pure dynamic self-scheduling; a
  /// larger chunk keeps indices that share cacheable work on one worker,
  /// e.g. sweep corners differing only in post-processing axes). If any
  /// invocation throws, the loop still drains (every index is claimed and
  /// run — no deadlock, the pool stays usable) and the first captured
  /// exception is rethrown on the caller with its type preserved. Further
  /// exceptions in the same epoch are counted, not lost: each shows up in
  /// its worker's WorkerStats::suppressed, and when any were suppressed
  /// the rethrow is converted to a std::runtime_error carrying the first
  /// exception's message plus the suppressed count. Not reentrant: fn
  /// must not call parallel_for on the same pool.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t chunk = 1);

  /// Sensible default worker count: hardware_concurrency, at least 1.
  static std::size_t default_workers();

  /// Utilization of every worker (index = worker id), accumulated since
  /// construction or the last reset. Call between loops, not during one.
  std::vector<WorkerStats> worker_stats() const;
  void reset_worker_stats();

 private:
  void worker_loop(std::size_t worker);
  void drain(std::size_t worker);

  std::size_t n_workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable start_cv_;  ///< job published / shutdown
  std::condition_variable done_cv_;   ///< helper finished the current job
  std::uint64_t epoch_ = 0;           ///< bumps once per parallel_for
  std::size_t active_ = 0;            ///< helpers still draining this epoch
  bool stop_ = false;

  // Current job; written under mu_ before the epoch bump, read by helpers
  // after observing the bump (mutex hand-off orders the accesses).
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> cursor_{0};  ///< next unclaimed chunk id

  // Per-epoch scratch (owner-only writes in drain, folded into stats_ by
  // the caller after the epoch barrier) and the accumulated totals.
  std::vector<std::uint64_t> epoch_busy_ns_;
  std::vector<std::uint64_t> epoch_items_;
  std::vector<std::uint64_t> epoch_suppressed_;
  std::vector<WorkerStats> stats_;

  std::mutex err_mu_;
  std::exception_ptr error_;
};

}  // namespace emc::sweep
