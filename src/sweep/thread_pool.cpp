#include "sweep/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace emc::sweep {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers)
    : n_workers_(std::max<std::size_t>(1, workers)) {
  epoch_busy_ns_.assign(n_workers_, 0);
  epoch_items_.assign(n_workers_, 0);
  epoch_suppressed_.assign(n_workers_, 0);
  stats_.assign(n_workers_, WorkerStats{});
  threads_.reserve(n_workers_ - 1);
  for (std::size_t w = 1; w < n_workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ThreadPool::default_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::vector<WorkerStats> ThreadPool::worker_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ThreadPool::reset_worker_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.assign(n_workers_, WorkerStats{});
}

void ThreadPool::drain(std::size_t worker) {
  std::uint64_t busy = 0;
  std::uint64_t items = 0;
  std::uint64_t suppressed = 0;
  for (;;) {
    const std::size_t c = cursor_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t lo = c * job_chunk_;
    if (lo >= job_n_) break;
    const std::size_t hi = std::min(job_n_, lo + job_chunk_);
    const std::uint64_t t0 = now_ns();
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        (*job_)(i, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu_);
        if (!error_)
          error_ = std::current_exception();
        else
          ++suppressed;
      }
    }
    busy += now_ns() - t0;
    items += hi - lo;
  }
  // Owner-only writes; the caller folds them into stats_ after the epoch
  // barrier (the mutex hand-off orders these against that read).
  epoch_busy_ns_[worker] = busy;
  epoch_items_[worker] = items;
  epoch_suppressed_[worker] = suppressed;
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    start_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    lk.unlock();
    drain(worker);
    lk.lock();
    if (--active_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk) {
  if (n == 0) return;
  const std::uint64_t t_epoch = now_ns();
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    job_chunk_ = std::max<std::size_t>(1, chunk);
    cursor_.store(0, std::memory_order_relaxed);
    std::fill(epoch_busy_ns_.begin(), epoch_busy_ns_.end(), 0);
    std::fill(epoch_items_.begin(), epoch_items_.end(), 0);
    std::fill(epoch_suppressed_.begin(), epoch_suppressed_.end(), 0);
    active_ = n_workers_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();

  drain(0);  // the caller is worker 0

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  job_ = nullptr;
  job_n_ = 0;
  // Fold the epoch into the running totals: whatever part of the epoch's
  // wall time a worker did not spend busy, it spent idle (waking up,
  // waiting on the cursor, or done early behind a slow tail).
  const std::uint64_t epoch_ns = now_ns() - t_epoch;
  std::uint64_t suppressed = 0;
  for (std::size_t w = 0; w < n_workers_; ++w) {
    const std::uint64_t busy = std::min(epoch_busy_ns_[w], epoch_ns);
    stats_[w].busy_ns += busy;
    stats_[w].idle_ns += epoch_ns - busy;
    stats_[w].items += epoch_items_[w];
    stats_[w].suppressed += epoch_suppressed_[w];
    suppressed += epoch_suppressed_[w];
    ++stats_[w].epochs;
  }
  lk.unlock();

  std::exception_ptr first;
  {
    std::lock_guard<std::mutex> elk(err_mu_);
    first = error_;
    error_ = nullptr;
  }
  if (!first) return;
  if (suppressed == 0) std::rethrow_exception(first);
  // More than one worker threw this epoch: only the first exception
  // survives, but its message must say so — a caller reading a single
  // error otherwise believes everything else completed.
  std::string msg;
  try {
    std::rethrow_exception(first);
  } catch (const std::exception& e) {
    msg = e.what();
  } catch (...) {
    msg = "non-standard worker exception";
  }
  throw std::runtime_error(msg + " (+" + std::to_string(suppressed) +
                           " more worker exception(s) suppressed)");
}

}  // namespace emc::sweep
