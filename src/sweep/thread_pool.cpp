#include "sweep/thread_pool.hpp"

#include <algorithm>

namespace emc::sweep {

ThreadPool::ThreadPool(std::size_t workers)
    : n_workers_(std::max<std::size_t>(1, workers)) {
  threads_.reserve(n_workers_ - 1);
  for (std::size_t w = 1; w < n_workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ThreadPool::default_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::drain(std::size_t worker) {
  for (;;) {
    const std::size_t c = cursor_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t lo = c * job_chunk_;
    if (lo >= job_n_) return;
    const std::size_t hi = std::min(job_n_, lo + job_chunk_);
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        (*job_)(i, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    start_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    lk.unlock();
    drain(worker);
    lk.lock();
    if (--active_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    job_chunk_ = std::max<std::size_t>(1, chunk);
    cursor_.store(0, std::memory_order_relaxed);
    active_ = n_workers_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();

  drain(0);  // the caller is worker 0

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  job_ = nullptr;
  job_n_ = 0;
  lk.unlock();

  std::lock_guard<std::mutex> elk(err_mu_);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace emc::sweep
